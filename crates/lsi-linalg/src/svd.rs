//! Full singular value decomposition.
//!
//! Two-phase dense SVD: Golub–Kahan Householder bidiagonalization
//! ([`crate::bidiag`]) followed by Golub–Reinsch implicit-shift QR on the
//! bidiagonal with Wilkinson shifts, deflation, and the zero-diagonal
//! splitting rotations. This is the same algorithm family SVDPACK's dense
//! path used, reimplemented from the literature (Golub & Van Loan §8.6).

use crate::bidiag::bidiagonalize;
use crate::dense::Matrix;
use crate::error::LinalgError;
use crate::Result;

/// A thin SVD `A = U Σ Vᵀ` with `p = min(m, n)` retained triplets.
///
/// `u` is `m × p`, `singular_values` has length `p` sorted descending and
/// nonnegative, and `vt` is `p × n`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, one per column.
    pub u: Matrix,
    /// Singular values, descending.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, one per **row**.
    pub vt: Matrix,
}

/// A rank-`k` truncation of an SVD — the object LSI actually works with.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// `m × k` left factor (the paper's `U_k`; its span is the "LSI space").
    pub u: Matrix,
    /// Leading `k` singular values, descending.
    pub singular_values: Vec<f64>,
    /// `k × n` right factor (rows of `V_kᵀ`).
    pub vt: Matrix,
}

impl Svd {
    /// Number of retained triplets (`min(m, n)`).
    pub fn len(&self) -> usize {
        self.singular_values.len()
    }

    /// True if no triplets are retained (zero-sized input).
    pub fn is_empty(&self) -> bool {
        self.singular_values.is_empty()
    }

    /// Numerical rank: the number of singular values above
    /// `tol * σ_max`.
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        if smax <= 0.0 {
            return 0;
        }
        self.singular_values
            .iter()
            .take_while(|&&s| s > tol * smax)
            .count()
    }

    /// Keeps the leading `k` triplets. `k` may not exceed [`Svd::len`].
    pub fn truncate(&self, k: usize) -> Result<TruncatedSvd> {
        if k > self.len() {
            return Err(LinalgError::InvalidDimension {
                op: "Svd::truncate",
                detail: format!("k={k} > available triplets {}", self.len()),
            });
        }
        Ok(TruncatedSvd {
            u: self.u.columns_prefix(k)?,
            singular_values: self.singular_values[..k].to_vec(),
            vt: self.vt.rows_prefix(k)?,
        })
    }

    /// `U Σ Vᵀ` — should reproduce the input up to rounding.
    pub fn reconstruct(&self) -> Result<Matrix> {
        reconstruct_parts(&self.u, &self.singular_values, &self.vt)
    }

    /// The Eckart–Young optimal rank-`k` approximation `A_k = U_k Σ_k V_kᵀ`
    /// (Theorem 1 of the paper).
    pub fn low_rank_approx(&self, k: usize) -> Result<Matrix> {
        self.truncate(k)?.reconstruct()
    }

    /// The Moore–Penrose pseudo-inverse `A⁺ = V Σ⁺ Uᵀ`, inverting only
    /// singular values above `tol · σ_max`.
    pub fn pseudo_inverse(&self, tol: f64) -> Result<Matrix> {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        let cutoff = tol * smax;
        // A⁺ = V diag(1/σ) Uᵀ: scale U's columns (as rows of Uᵀ), then
        // multiply by Vᵀᵀ.
        let mut ut = self.u.transpose();
        for (i, &s) in self.singular_values.iter().enumerate() {
            let inv = if s > cutoff && s > 0.0 { 1.0 / s } else { 0.0 };
            for x in ut.row_mut(i) {
                *x *= inv;
            }
        }
        self.vt.transpose().matmul(&ut)
    }
}

impl TruncatedSvd {
    /// The truncation rank `k`.
    pub fn rank(&self) -> usize {
        self.singular_values.len()
    }

    /// `U_k Σ_k V_kᵀ`.
    pub fn reconstruct(&self) -> Result<Matrix> {
        reconstruct_parts(&self.u, &self.singular_values, &self.vt)
    }

    /// Projects a length-`m` column vector (a document, in LSI terms) into
    /// the `k`-dimensional left singular subspace: returns `U_kᵀ x`.
    pub fn project(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.u.matvec_transpose(x)
    }

    /// Document representation matrix `V_k Σ_k` (documents as rows), the
    /// representation the paper uses for retrieval.
    pub fn doc_representation(&self) -> Matrix {
        let k = self.rank();
        let n = self.vt.ncols();
        let mut out = Matrix::zeros(n, k);
        for j in 0..n {
            for i in 0..k {
                out[(j, i)] = self.vt[(i, j)] * self.singular_values[i];
            }
        }
        out
    }
}

fn reconstruct_parts(u: &Matrix, s: &[f64], vt: &Matrix) -> Result<Matrix> {
    // U * diag(s) * Vt, scaling Vt's rows to avoid forming diag(s).
    let mut svt = vt.clone();
    for (i, &si) in s.iter().enumerate() {
        for x in svt.row_mut(i) {
            *x *= si;
        }
    }
    u.matmul(&svt)
}

/// Givens rotation coefficients `(c, s)` with `c = a/r`, `s = b/r`,
/// `r = hypot(a, b)`; `(1, 0)` when both inputs vanish.
#[inline]
fn givens(a: f64, b: f64) -> (f64, f64) {
    let r = a.hypot(b);
    if r <= f64::MIN_POSITIVE {
        (1.0, 0.0)
    } else {
        (a / r, b / r)
    }
}

/// Applies the rotation to columns `i` and `j` of `m`:
/// `(col_i, col_j) ← (c·col_i + s·col_j, −s·col_i + c·col_j)`.
#[inline]
fn rotate_cols(m: &mut Matrix, i: usize, j: usize, c: f64, s: f64) {
    let rows = m.nrows();
    for r in 0..rows {
        let u = m[(r, i)];
        let v = m[(r, j)];
        m[(r, i)] = c * u + s * v;
        m[(r, j)] = -s * u + c * v;
    }
}

/// Golub–Kahan SVD step (one implicit-shift QR sweep) on the active block
/// `p..=q` of the bidiagonal `(d, e)`, accumulating rotations into `u`/`v`.
fn qr_sweep(d: &mut [f64], e: &mut [f64], p: usize, q: usize, u: &mut Matrix, v: &mut Matrix) {
    // Wilkinson shift from the trailing 2×2 of BᵀB restricted to the block.
    let t11 = d[q - 1] * d[q - 1] + if q - 1 > p { e[q - 2] * e[q - 2] } else { 0.0 };
    let t12 = d[q - 1] * e[q - 1];
    let t22 = d[q] * d[q] + e[q - 1] * e[q - 1];
    let delta = (t11 - t22) / 2.0;
    let denom = delta + delta.signum() * delta.hypot(t12);
    let mu = if denom.abs() <= f64::MIN_POSITIVE {
        t22
    } else {
        t22 - t12 * t12 / denom
    };

    let mut y = d[p] * d[p] - mu;
    let mut z = d[p] * e[p];

    for k in p..q {
        // Right rotation: zeroes z (the bulge in row k−1 when k > p).
        let (c, s) = givens(y, z);
        if k > p {
            e[k - 1] = y.hypot(z);
        }
        let f = c * d[k] + s * e[k];
        e[k] = -s * d[k] + c * e[k];
        d[k] = f;
        let bulge = s * d[k + 1];
        d[k + 1] *= c;
        rotate_cols(v, k, k + 1, c, s);

        // Left rotation: zeroes the bulge that appeared at B[k+1, k].
        let (c2, s2) = givens(d[k], bulge);
        d[k] = d[k].hypot(bulge);
        let f2 = c2 * e[k] + s2 * d[k + 1];
        d[k + 1] = -s2 * e[k] + c2 * d[k + 1];
        e[k] = f2;
        if k + 1 < q {
            y = e[k];
            z = s2 * e[k + 1];
            e[k + 1] *= c2;
        }
        rotate_cols(u, k, k + 1, c2, s2);
    }
}

/// When `d[i] ≈ 0` inside the block, chase `e[i]` off the matrix with left
/// rotations against rows `i+1..=q`.
fn chase_zero_diag_row(d: &mut [f64], e: &mut [f64], i: usize, q: usize, u: &mut Matrix) {
    let mut f = e[i];
    e[i] = 0.0;
    for j in i + 1..=q {
        // Rotate rows (j, i) to annihilate the bulge f at position (i, j)
        // against the diagonal d[j]; the same rotation then shifts the bulge
        // one column to the right via e[j].
        let (c, s) = givens(d[j], f);
        d[j] = d[j].hypot(f);
        rotate_cols(u, j, i, c, s);
        if j < q {
            let g = e[j];
            e[j] = c * g;
            f = -s * g;
        }
    }
}

/// When the trailing diagonal of the block `d[q] ≈ 0`, chase `e[q−1]` upward
/// with right (column) rotations against columns `p..q`.
fn chase_zero_diag_col(d: &mut [f64], e: &mut [f64], p: usize, q: usize, v: &mut Matrix) {
    let mut f = e[q - 1];
    e[q - 1] = 0.0;
    let mut j = q - 1;
    loop {
        let (c, s) = givens(d[j], f);
        d[j] = d[j].hypot(f);
        rotate_cols(v, j, q, c, s);
        if j == p {
            break;
        }
        let g = e[j - 1];
        e[j - 1] = c * g;
        f = -s * g;
        j -= 1;
    }
}

/// Diagonalizes the bidiagonal `(d, e)` in place, accumulating rotations.
/// Returns an error if any block fails to deflate within the iteration cap.
fn golub_reinsch(d: &mut [f64], e: &mut [f64], u: &mut Matrix, v: &mut Matrix) -> Result<()> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    let eps = f64::EPSILON;
    let anorm = d
        .iter()
        .chain(e.iter())
        .map(|x| x.abs())
        .fold(0.0, f64::max)
        .max(f64::MIN_POSITIVE);

    let max_sweeps = 60 * n.max(4);
    let mut sweeps = 0usize;
    let mut q = n - 1;

    'outer: loop {
        // Deflate negligible superdiagonal entries.
        for i in 0..n - 1 {
            if e[i].abs() <= eps * (d[i].abs() + d[i + 1].abs()) + f64::MIN_POSITIVE {
                e[i] = 0.0;
            }
        }
        // Shrink q past converged trailing 1×1 blocks.
        while q > 0 && e[q - 1] == 0.0 {
            q -= 1;
        }
        if q == 0 {
            break 'outer;
        }
        // Active block is p..=q with all e[p..q] nonzero.
        let mut p = q - 1;
        while p > 0 && e[p - 1] != 0.0 {
            p -= 1;
        }

        sweeps += 1;
        if sweeps > max_sweeps {
            return Err(LinalgError::NoConvergence {
                op: "svd",
                iterations: sweeps,
            });
        }

        // Zero diagonal inside the block forces a split.
        let mut split = false;
        for i in p..q {
            if d[i].abs() <= eps * anorm {
                d[i] = 0.0;
                chase_zero_diag_row(d, e, i, q, u);
                split = true;
                break;
            }
        }
        if split {
            continue;
        }
        if d[q].abs() <= eps * anorm {
            d[q] = 0.0;
            chase_zero_diag_col(d, e, p, q, v);
            continue;
        }

        qr_sweep(d, e, p, q, u, v);
    }
    Ok(())
}

/// Full thin SVD of an arbitrary dense matrix.
///
/// Works for any shape (transposes internally when `m < n`); returns
/// `min(m, n)` triplets sorted by descending singular value, with
/// nonnegative values and sign-canonicalized vectors (the entry of largest
/// magnitude in each left singular vector is positive), so results are
/// comparable across backends.
pub fn svd(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            singular_values: Vec::new(),
            vt: Matrix::zeros(0, n),
        });
    }
    if m < n {
        // SVD of Aᵀ = U Σ Vᵀ  ⇒  A = V Σ Uᵀ.
        let f = svd(&a.transpose())?;
        return Ok(Svd {
            u: f.vt.transpose(),
            singular_values: f.singular_values,
            vt: f.u.transpose(),
        });
    }

    let bd = bidiagonalize(a)?;
    let mut d = bd.diag;
    let mut e = bd.superdiag;
    let mut u = bd.u;
    let mut v = bd.v;

    // Normalize the bidiagonal's scale before iterating: the Wilkinson
    // shift squares entries, so matrices near 1e±150 would otherwise
    // underflow/overflow intermediates and stall convergence.
    let anorm = d
        .iter()
        .chain(e.iter())
        .map(|x| x.abs())
        .fold(0.0f64, f64::max);
    if anorm > 0.0 {
        for x in d.iter_mut().chain(e.iter_mut()) {
            *x /= anorm;
        }
    }

    golub_reinsch(&mut d, &mut e, &mut u, &mut v)?;

    if anorm > 0.0 {
        for x in &mut d {
            *x *= anorm;
        }
    }

    // Make singular values nonnegative by flipping the U column.
    for (i, di) in d.iter_mut().enumerate() {
        if *di < 0.0 {
            *di = -*di;
            for r in 0..u.nrows() {
                u[(r, i)] = -u[(r, i)];
            }
        }
    }

    // Sort triplets descending by singular value.
    let mut order: Vec<usize> = (0..d.len()).collect();
    // lsi-lint: allow(E1-panic-policy, "invariant: the finiteness guard on the input keeps singular values finite")
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("singular values are finite"));
    let sorted_s: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut su = Matrix::zeros(u.nrows(), d.len());
    let mut sv = Matrix::zeros(v.nrows(), d.len());
    for (new_j, &old_j) in order.iter().enumerate() {
        su.set_col(new_j, &u.col(old_j));
        sv.set_col(new_j, &v.col(old_j));
    }

    // Sign canonicalization: largest-|entry| of each u column positive.
    for j in 0..sorted_s.len() {
        let col = su.col(j);
        let mut best = 0usize;
        let mut best_abs = 0.0;
        for (i, &x) in col.iter().enumerate() {
            if x.abs() > best_abs {
                best_abs = x.abs();
                best = i;
            }
        }
        if best_abs > 0.0 && col[best] < 0.0 {
            for r in 0..su.nrows() {
                su[(r, j)] = -su[(r, j)];
            }
            for r in 0..sv.nrows() {
                sv[(r, j)] = -sv[(r, j)];
            }
        }
    }

    Ok(Svd {
        u: su,
        singular_values: sorted_s,
        vt: sv.transpose(),
    })
}

/// Convenience: SVD truncated to rank `k` (`k ≤ min(m, n)`).
pub fn svd_truncated(a: &Matrix, k: usize) -> Result<TruncatedSvd> {
    svd(a)?.truncate(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::frobenius;
    use crate::qr::orthonormality_error;
    use crate::rng::{gaussian_matrix, seeded};

    fn check_svd(a: &Matrix, tol: f64) {
        let f = svd(a).unwrap();
        let r = f.reconstruct().unwrap();
        let scale = frobenius(a).max(1.0);
        let err = r.max_abs_diff(a).unwrap();
        assert!(err < tol * scale, "reconstruction error {err}");
        assert!(orthonormality_error(&f.u) < 1e-10, "U not orthonormal");
        assert!(
            orthonormality_error(&f.vt.transpose()) < 1e-10,
            "V not orthonormal"
        );
        // Descending nonnegative.
        for w in f.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(f.singular_values.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_diagonal() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let f = svd(&a).unwrap();
        let s = &f.singular_values;
        assert!((s[0] - 3.0).abs() < 1e-12);
        assert!((s[1] - 2.0).abs() < 1e-12);
        assert!((s[2] - 1.0).abs() < 1e-12);
        check_svd(&a, 1e-12);
    }

    #[test]
    fn svd_known_2x2() {
        // A = [[1, 1], [0, 1]] has singular values sqrt((3±sqrt5)/2).
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let f = svd(&a).unwrap();
        let s1 = ((3.0 + 5f64.sqrt()) / 2.0).sqrt();
        let s2 = ((3.0 - 5f64.sqrt()) / 2.0).sqrt();
        assert!((f.singular_values[0] - s1).abs() < 1e-12);
        assert!((f.singular_values[1] - s2).abs() < 1e-12);
        check_svd(&a, 1e-12);
    }

    #[test]
    fn svd_random_shapes() {
        let mut rng = seeded(31);
        for &(m, n) in &[
            (6usize, 6usize),
            (10, 4),
            (4, 10),
            (1, 5),
            (5, 1),
            (2, 2),
            (20, 7),
        ] {
            let a = gaussian_matrix(&mut rng, m, n);
            check_svd(&a, 1e-10);
        }
    }

    #[test]
    fn svd_rank_deficient() {
        // Rank-1 outer product.
        let u = [1.0, 2.0, 3.0];
        let v = [4.0, 5.0];
        let a = Matrix::from_fn(3, 2, |i, j| u[i] * v[j]);
        let f = svd(&a).unwrap();
        assert!(f.singular_values[1].abs() < 1e-10);
        assert_eq!(f.rank(1e-9), 1);
        check_svd(&a, 1e-11);
    }

    #[test]
    fn svd_zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let f = svd(&a).unwrap();
        assert!(f.singular_values.iter().all(|&s| s == 0.0));
        assert_eq!(f.rank(1e-12), 0);
    }

    #[test]
    fn svd_empty() {
        let a = Matrix::zeros(0, 3);
        let f = svd(&a).unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn svd_matches_gram_eigenvalues() {
        // σᵢ² are the eigenvalues of AᵀA: verify via trace and det for 2×2.
        let a = Matrix::from_rows(&[&[2.0, 0.5], &[1.0, 3.0], &[0.0, 1.0]]).unwrap();
        let f = svd(&a).unwrap();
        let g = a.transpose_matmul(&a).unwrap();
        let trace = g[(0, 0)] + g[(1, 1)];
        let det = g[(0, 0)] * g[(1, 1)] - g[(0, 1)] * g[(1, 0)];
        let s0 = f.singular_values[0] * f.singular_values[0];
        let s1 = f.singular_values[1] * f.singular_values[1];
        assert!((s0 + s1 - trace).abs() < 1e-10);
        assert!((s0 * s1 - det).abs() < 1e-9);
    }

    #[test]
    fn truncate_and_low_rank() {
        let mut rng = seeded(77);
        let a = gaussian_matrix(&mut rng, 8, 6);
        let f = svd(&a).unwrap();
        let t = f.truncate(2).unwrap();
        assert_eq!(t.rank(), 2);
        assert_eq!(t.u.shape(), (8, 2));
        assert_eq!(t.vt.shape(), (2, 6));
        // ‖A − A_k‖²_F = Σ_{i>k} σᵢ².
        let ak = f.low_rank_approx(2).unwrap();
        let err = frobenius(&a.sub(&ak).unwrap());
        let tail: f64 = f.singular_values[2..].iter().map(|s| s * s).sum();
        assert!((err * err - tail).abs() < 1e-9, "{} vs {}", err * err, tail);
        assert!(f.truncate(100).is_err());
    }

    #[test]
    fn doc_representation_is_v_sigma() {
        let mut rng = seeded(5);
        let a = gaussian_matrix(&mut rng, 6, 4);
        let t = svd_truncated(&a, 3).unwrap();
        let rep = t.doc_representation();
        assert_eq!(rep.shape(), (4, 3));
        // Row j of rep should equal Σ_k ∘ (column j of Vt) = U_kᵀ a_j.
        for j in 0..4 {
            let proj = t.project(&a.col(j)).unwrap();
            for i in 0..3 {
                assert!((rep[(j, i)] - proj[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn svd_graded_singular_values() {
        // Widely spread spectrum stresses deflation.
        let s_true = [1e6, 1e3, 1.0, 1e-3, 1e-6];
        let mut rng = seeded(9);
        let u = crate::rng::random_orthonormal(&mut rng, 8, 5).unwrap();
        let v = crate::rng::random_orthonormal(&mut rng, 5, 5).unwrap();
        let mut svt = v.transpose();
        for (i, &si) in s_true.iter().enumerate() {
            for x in svt.row_mut(i) {
                *x *= si;
            }
        }
        let a = u.matmul(&svt).unwrap();
        let f = svd(&a).unwrap();
        for (got, want) in f.singular_values.iter().zip(&s_true) {
            assert!((got - want).abs() <= 1e-9 * 1e6, "got {got}, want {want}");
        }
    }

    #[test]
    fn svd_identity() {
        let f = svd(&Matrix::identity(5)).unwrap();
        for &s in &f.singular_values {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pseudo_inverse_of_invertible_is_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let pinv = svd(&a).unwrap().pseudo_inverse(1e-12).unwrap();
        let prod = a.matmul(&pinv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(2)).unwrap() < 1e-12);
    }

    #[test]
    fn pseudo_inverse_satisfies_penrose_conditions() {
        let mut rng = seeded(13);
        let a = gaussian_matrix(&mut rng, 7, 4);
        let p = svd(&a).unwrap().pseudo_inverse(1e-12).unwrap();
        assert_eq!(p.shape(), (4, 7));
        // A A⁺ A = A and A⁺ A A⁺ = A⁺.
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(apa.max_abs_diff(&a).unwrap() < 1e-9);
        let pap = p.matmul(&a).unwrap().matmul(&p).unwrap();
        assert!(pap.max_abs_diff(&p).unwrap() < 1e-9);
    }

    #[test]
    fn pseudo_inverse_handles_rank_deficiency() {
        // Rank-1 matrix: the pseudo-inverse must not blow up.
        let a = Matrix::from_fn(4, 3, |i, j| ((i + 1) * (j + 1)) as f64);
        let p = svd(&a).unwrap().pseudo_inverse(1e-10).unwrap();
        assert!(p.is_finite());
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(apa.max_abs_diff(&a).unwrap() < 1e-9);
    }
}
