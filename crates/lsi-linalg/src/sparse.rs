//! Compressed sparse row (CSR) matrices.
//!
//! Term–document matrices are extremely sparse (a document touches a few
//! dozen of thousands of terms); the Lanczos truncated SVD only needs
//! matrix–vector products, so CSR plus [`LinearOperator`] is all LSI needs
//! to scale the way the paper assumes (`O(mnc)` with `c` nonzeros/column).

use crate::dense::Matrix;
use crate::error::LinalgError;
use crate::operator::LinearOperator;
use crate::parallel;
use crate::Result;

/// Output rows per CSR matvec chunk (fixed: chunk boundaries must not
/// depend on the thread count).
const CSR_ROW_GRAIN: usize = 256;
/// Output columns per CSR transpose-matvec chunk.
const CSR_COL_GRAIN: usize = 1024;

/// An immutable CSR sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array, length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column index of each stored entry, grouped by row, sorted within row.
    col_idx: Vec<usize>,
    /// Stored values, parallel to `col_idx`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from COO triplets `(row, col, value)`.
    ///
    /// Duplicate coordinates are **summed** (the natural semantics for
    /// accumulating term counts); explicit zeros are dropped; out-of-bounds
    /// coordinates are an error.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(LinalgError::InvalidEntry {
                    op: "CsrMatrix::from_triplets",
                    row: r,
                    col: c,
                });
            }
        }
        // Sort by (row, col) and merge duplicates.
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());

        let mut i = 0;
        while i < sorted.len() {
            let (r, c, mut v) = sorted[i];
            i += 1;
            while i < sorted.len() && sorted[i].0 == r && sorted[i].1 == c {
                v += sorted[i].2;
                i += 1;
            }
            if v != 0.0 {
                row_ptr[r + 1] += 1;
                col_idx.push(c);
                values.push(v);
            }
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix, dropping entries with `|x| <= drop_tol`.
    pub fn from_dense(a: &Matrix, drop_tol: f64) -> Self {
        let (rows, cols) = a.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for (j, &x) in a.row(i).iter().enumerate() {
                if x.abs() > drop_tol {
                    col_idx.push(j);
                    values.push(x);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// An all-zero sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill fraction `nnz / (rows * cols)`, `0.0` for empty shapes.
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// The stored entries of row `i` as `(column, value)` pairs.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Reads a single entry (O(log nnz-in-row)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Applies `f` to every stored value in place (structure unchanged).
    /// The weighting schemes in `lsi-ir` use this for tf transforms.
    pub fn map_values_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// Scales every stored value of row `i` by `factor` (for row/IDF scaling).
    pub fn scale_row(&mut self, i: usize, factor: f64) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        for v in &mut self.values[lo..hi] {
            *v *= factor;
        }
    }

    /// Scales every stored value in column `j` of every row by the factor in
    /// `factors[j]` (for document-length normalization).
    pub fn scale_cols(&mut self, factors: &[f64]) -> Result<()> {
        if factors.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "scale_cols",
                left: (self.rows, self.cols),
                right: (factors.len(), 1),
            });
        }
        for (c, v) in self.col_idx.iter().zip(&mut self.values) {
            *v *= factors[*c];
        }
        Ok(())
    }

    /// Euclidean norm of each column.
    pub fn column_norms(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.cols];
        for (c, v) in self.col_idx.iter().zip(&self.values) {
            acc[*c] += v * v;
        }
        for a in &mut acc {
            *a = a.sqrt();
        }
        acc
    }

    /// Number of stored entries in each row (term document-frequencies when
    /// rows are terms).
    pub fn row_nnz(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|i| self.row_ptr[i + 1] - self.row_ptr[i])
            .collect()
    }

    /// The transpose, also in CSR.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for i in 0..self.rows {
            for (c, v) in self.row_entries(i) {
                let pos = next[c];
                col_idx[pos] = i;
                values[pos] = v;
                next[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Densifies; intended for tests and small matrices.
    pub fn to_dense_matrix(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (c, v) in self.row_entries(i) {
                out[(i, c)] = v;
            }
        }
        out
    }

    /// `self * x` written into `out` (`out.len()` must equal `nrows`),
    /// allocation-free. Row blocks run on the [`parallel`] executor; each
    /// row's accumulation order is that of the serial kernel, so results
    /// are bitwise identical at any thread count.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.cols || out.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::matvec_into",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        let work = self.nnz().saturating_mul(2);
        parallel::for_chunks_mut(out, CSR_ROW_GRAIN, work, |_, offset, chunk| {
            for (r, yi) in chunk.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (c, v) in self.row_entries(offset + r) {
                    acc += v * x[c];
                }
                *yi = acc;
            }
        });
        Ok(())
    }

    /// `selfᵀ * x` written into `out` (`out.len()` must equal `ncols`),
    /// allocation-free.
    ///
    /// Serially this is the classic row-major scatter. In parallel each
    /// thread owns a block of output columns and walks the rows in the same
    /// ascending order, binary-searching each row's (column-sorted) entries
    /// for its block — per output element the contributions arrive in
    /// exactly the serial order, so the two paths are bitwise identical.
    pub fn matvec_transpose_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.rows || out.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "CsrMatrix::matvec_transpose_into",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        let work = self.nnz().saturating_mul(2);
        if parallel::threads() <= 1 || work < parallel::SPAWN_WORK_THRESHOLD {
            // Serial fast path: one pass over the rows, scattering into the
            // full output — better locality than per-block column scans.
            out.fill(0.0);
            for (i, &xi) in x.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                for (c, v) in self.row_entries(i) {
                    out[c] += v * xi;
                }
            }
            return Ok(());
        }
        parallel::for_chunks_mut(out, CSR_COL_GRAIN, work, |_, offset, chunk| {
            chunk.fill(0.0);
            let hi_col = offset + chunk.len();
            for (i, &xi) in x.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let lo = self.row_ptr[i];
                let hi = self.row_ptr[i + 1];
                let cols = &self.col_idx[lo..hi];
                let start = cols.partition_point(|&c| c < offset);
                for (&c, &v) in cols[start..].iter().zip(&self.values[lo + start..hi]) {
                    if c >= hi_col {
                        break;
                    }
                    chunk[c - offset] += v * xi;
                }
            }
        });
        Ok(())
    }

    /// Squared Frobenius norm.
    pub fn frobenius_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.frobenius_sq().sqrt()
    }
}

impl LinearOperator for CsrMatrix {
    fn nrows(&self) -> usize {
        self.rows
    }

    fn ncols(&self) -> usize {
        self.cols
    }

    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    fn apply_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.cols];
        self.matvec_transpose_into(x, &mut y)?;
        Ok(y)
    }

    fn apply_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        self.matvec_into(x, out)
    }

    fn apply_transpose_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        self.matvec_transpose_into(x, out)
    }

    fn to_dense(&self) -> Result<Matrix> {
        Ok(self.to_dense_matrix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_triplets_basic() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 2), 5.0);
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]).unwrap();
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn from_triplets_drops_zero_sums() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, -1.0), (1, 1, 2.0)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let d = m.to_dense_matrix();
        let back = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(m, back);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let d = m.to_dense_matrix();
        let x = vec![1.0, -2.0, 0.5, 3.0];
        assert_eq!(m.apply(&x).unwrap(), d.matvec(&x).unwrap());
        let y = vec![1.0, 2.0, -1.0];
        assert_eq!(
            m.apply_transpose(&y).unwrap(),
            d.matvec_transpose(&y).unwrap()
        );
    }

    #[test]
    fn matvec_shape_errors() {
        let m = sample();
        assert!(m.apply(&[1.0]).is_err());
        assert!(m.apply_transpose(&[1.0]).is_err());
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        let expect = m.to_dense_matrix().transpose();
        assert_eq!(t.to_dense_matrix().max_abs_diff(&expect), Some(0.0));
    }

    #[test]
    fn column_norms_and_row_nnz() {
        let m = sample();
        let norms = m.column_norms();
        assert!((norms[0] - (1.0f64 + 16.0).sqrt()).abs() < 1e-14);
        assert!((norms[1] - 3.0).abs() < 1e-14);
        assert_eq!(m.row_nnz(), vec![2, 1, 2]);
    }

    #[test]
    fn scale_row_and_cols() {
        let mut m = sample();
        m.scale_row(0, 2.0);
        assert_eq!(m.get(0, 3), 4.0);
        m.scale_cols(&[1.0, 10.0, 1.0, 1.0]).unwrap();
        assert_eq!(m.get(1, 1), 30.0);
        assert!(m.scale_cols(&[1.0]).is_err());
    }

    #[test]
    fn map_values() {
        let mut m = sample();
        m.map_values_inplace(|v| v + 1.0);
        assert_eq!(m.get(0, 0), 2.0);
        // Structure unchanged: zeros stay zero.
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn density_and_frobenius() {
        let m = sample();
        assert!((m.density() - 5.0 / 12.0).abs() < 1e-15);
        let expect_sq = 1.0 + 4.0 + 9.0 + 16.0 + 25.0;
        assert!((m.frobenius_sq() - expect_sq).abs() < 1e-12);
        assert!((m.frobenius() - expect_sq.sqrt()).abs() < 1e-12);
        assert_eq!(CsrMatrix::zeros(0, 0).density(), 0.0);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(4, 2, &[(3, 1, 1.0)]).unwrap();
        assert_eq!(m.row_entries(0).count(), 0);
        assert_eq!(m.row_entries(3).count(), 1);
        let x = vec![1.0, 1.0];
        assert_eq!(m.apply(&x).unwrap(), vec![0.0, 0.0, 0.0, 1.0]);
    }
}
