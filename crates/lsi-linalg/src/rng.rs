//! Seeded random sampling used across the workspace.
//!
//! `rand` provides uniform variates; the Gaussian sampler (Marsaglia polar
//! method) lives here so the workspace does not need `rand_distr`. Every
//! entry point takes an explicit seed or `&mut impl Rng` so that experiments
//! are reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dense::Matrix;
use crate::qr::qr_thin;
use crate::Result;

/// Creates the workspace-standard seeded PRNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one standard-normal variate by the Marsaglia polar method.
///
/// Discards the second variate of each pair; sampling here is never the
/// bottleneck (SVD is), so the simpler stateless form wins.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Fills `out` with i.i.d. standard-normal variates.
pub fn fill_standard_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    for x in out {
        *x = standard_normal(rng);
    }
}

/// An `n × m` matrix of i.i.d. standard-normal entries.
pub fn gaussian_matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let mut data = vec![0.0; rows * cols];
    fill_standard_normal(rng, &mut data);
    Matrix::from_vec(rows, cols, data)
        // lsi-lint: allow(E1-panic-policy, "invariant: rows*cols samples were just drawn, the length matches")
        .expect("gaussian_matrix: data length matches by construction")
}

/// A random `n × l` column-orthonormal matrix: the Q factor of a Gaussian
/// matrix. This is the projection matrix `R` of the paper's Section 5 (the
/// basis of a uniformly random `l`-dimensional subspace of Rⁿ).
///
/// Requires `l <= n` so the columns can be orthonormal.
pub fn random_orthonormal<R: Rng + ?Sized>(rng: &mut R, n: usize, l: usize) -> Result<Matrix> {
    if l > n {
        return Err(crate::LinalgError::InvalidDimension {
            op: "random_orthonormal",
            detail: format!("need l <= n, got l={l}, n={n}"),
        });
    }
    let g = gaussian_matrix(rng, n, l);
    let (q, _r) = qr_thin(&g)?;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xa: Vec<f64> = (0..8).map(|_| standard_normal(&mut a)).collect();
        let xb: Vec<f64> = (0..8).map(|_| standard_normal(&mut b)).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = seeded(7);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gaussian_matrix_shape() {
        let mut rng = seeded(3);
        let g = gaussian_matrix(&mut rng, 4, 7);
        assert_eq!(g.nrows(), 4);
        assert_eq!(g.ncols(), 7);
        assert!(g.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn random_orthonormal_columns() {
        let mut rng = seeded(11);
        let q = random_orthonormal(&mut rng, 20, 5).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let d = crate::vector::dot(&q.col(i), &q.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-10, "({i},{j}) -> {d}");
            }
        }
    }

    #[test]
    fn random_orthonormal_rejects_wide() {
        let mut rng = seeded(11);
        assert!(random_orthonormal(&mut rng, 3, 5).is_err());
    }
}
