//! Deterministic chunked parallel executor for the hot kernels.
//!
//! Every parallel routine in this crate is built on two primitives —
//! [`for_chunks_mut`] (disjoint output partitioning) and [`map_chunks`]
//! (ordered per-chunk results) — designed so that results are **bitwise
//! identical for every thread count**:
//!
//! * **Fixed chunk boundaries.** Work is split into chunks whose boundaries
//!   depend only on the problem size and a per-call-site grain constant,
//!   never on the thread count. Threads claim whole chunks (static
//!   round-robin), so which thread runs a chunk can vary but what a chunk
//!   computes cannot.
//! * **Disjoint outputs.** Each chunk owns a disjoint slice of the output,
//!   so there are no concurrent writes and no atomics in the data path.
//! * **Ordered combine.** Reductions ([`dot`]) produce one partial per
//!   chunk, collected in chunk order and folded sequentially on the calling
//!   thread. The floating-point evaluation order is therefore a function of
//!   the input length alone.
//!
//! The thread count resolves, in precedence order: [`set_threads`] >
//! the `LSI_THREADS` environment variable (read once, at first use) >
//! [`std::thread::available_parallelism`]. A count of `1` takes the exact
//! serial path (no threads spawned); small problems stay serial regardless,
//! gated by an approximate work estimate against
//! [`SPAWN_WORK_THRESHOLD`] — a gate that is safe precisely because the
//! serial and parallel paths are bitwise interchangeable.
//!
//! Threads are spawned per parallel region with [`std::thread::scope`]
//! (std-only; the workspace vendors no thread-pool crate). The work
//! threshold keeps that spawn cost amortized: regions below ~4·10⁶ flops
//! (e.g. a 1000×1000 matvec) run inline.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::vector;

/// Approximate per-region flop count below which the executor stays serial.
///
/// Thread spawn/join costs tens of microseconds per region, so regions
/// cheaper than this lose more to spawning than they gain from parallelism:
/// `BENCH_kernels.json` measured the 1000×1000 dense matvec (2·10⁶ flops)
/// *slower* at 2 and 4 threads than at 1 under the previous `1 << 17` gate.
/// The cutoff depends only on the work estimate — a pure function of the
/// problem size — never on the thread count, so raising it cannot change any
/// output bit (serial and parallel paths are bitwise interchangeable).
pub const SPAWN_WORK_THRESHOLD: usize = 1 << 22;

/// Fixed reduction-chunk width (in elements) for [`dot`]. Vectors no longer
/// than this use a single straight-line accumulation; longer vectors are
/// reduced per-chunk and combined in chunk order. Part of the determinism
/// contract: never derived from the thread count.
pub const DOT_CHUNK: usize = 1 << 13;

/// Programmatic thread-count override; `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `LSI_THREADS` parsed once; `0` means "unset or invalid".
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Sets the global kernel thread count. `0` resets to automatic resolution
/// (the `LSI_THREADS` environment variable, then available parallelism);
/// `1` forces the exact serial path. Thread-count changes never change
/// results: all kernels in this crate are bitwise thread-count-invariant.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The thread count kernels will use: [`set_threads`] override if set, else
/// `LSI_THREADS` (read once), else [`std::thread::available_parallelism`].
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    let env = *ENV_THREADS.get_or_init(|| {
        std::env::var("LSI_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(0)
    });
    if env != 0 {
        return env;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Number of threads a region with `n_chunks` chunks of `work` total flops
/// would actually use.
fn effective_threads(n_chunks: usize, work: usize) -> usize {
    if work < SPAWN_WORK_THRESHOLD {
        1
    } else {
        threads().min(n_chunks).max(1)
    }
}

/// Splits `out` into fixed `grain`-sized chunks and runs
/// `f(chunk_index, offset, chunk)` for each, distributing chunks round-robin
/// over up to [`threads()`] scoped threads when `work` (an approximate flop
/// count for the whole region) clears [`SPAWN_WORK_THRESHOLD`].
///
/// Chunk boundaries depend only on `out.len()` and `grain`, and every chunk
/// is a disjoint `&mut` slice, so the result is bitwise identical for any
/// thread count. `offset` is the index of `chunk[0]` within `out`.
pub fn for_chunks_mut<T, F>(out: &mut [T], grain: usize, work: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    if out.is_empty() {
        return;
    }
    let grain = grain.max(1);
    let n_chunks = out.len().div_ceil(grain);
    let t = effective_threads(n_chunks, work);
    if t <= 1 {
        for (ci, chunk) in out.chunks_mut(grain).enumerate() {
            f(ci, ci * grain, chunk);
        }
        return;
    }
    let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..t).map(|_| Vec::new()).collect();
    for (ci, chunk) in out.chunks_mut(grain).enumerate() {
        buckets[ci % t].push((ci, chunk));
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut buckets = buckets.into_iter();
        // lsi-lint: allow(E1-panic-policy, "unreachable: effective_threads() returns >= 1, so one bucket always exists")
        let mine = buckets.next().expect("t >= 1 buckets");
        for bucket in buckets {
            s.spawn(move || {
                for (ci, chunk) in bucket {
                    f(ci, ci * grain, chunk);
                }
            });
        }
        for (ci, chunk) in mine {
            f(ci, ci * grain, chunk);
        }
    });
}

/// Runs `f(chunk_index, range)` over fixed `grain`-sized chunks of `0..len`
/// and returns the per-chunk results **in chunk order**, parallelizing like
/// [`for_chunks_mut`]. The ordered result vector is what makes reductions
/// deterministic: callers fold it sequentially.
pub fn map_chunks<R, F>(len: usize, grain: usize, work: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let grain = grain.max(1);
    let n_chunks = len.div_ceil(grain);
    let range = |ci: usize| ci * grain..((ci + 1) * grain).min(len);
    let t = effective_threads(n_chunks, work);
    if t <= 1 {
        return (0..n_chunks).map(|ci| f(ci, range(ci))).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    let mut buckets: Vec<Vec<(usize, &mut Option<R>)>> = (0..t).map(|_| Vec::new()).collect();
    for (ci, slot) in slots.iter_mut().enumerate() {
        buckets[ci % t].push((ci, slot));
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut buckets = buckets.into_iter();
        // lsi-lint: allow(E1-panic-policy, "unreachable: effective_threads() returns >= 1, so one bucket always exists")
        let mine = buckets.next().expect("t >= 1 buckets");
        for bucket in buckets {
            s.spawn(move || {
                for (ci, slot) in bucket {
                    *slot = Some(f(ci, range(ci)));
                }
            });
        }
        for (ci, slot) in mine {
            *slot = Some(f(ci, range(ci)));
        }
    });
    slots
        .into_iter()
        // lsi-lint: allow(E1-panic-policy, "unreachable: every chunk index is assigned to exactly one bucket")
        .map(|s| s.expect("every chunk executed"))
        .collect()
}

/// Dot product with fixed-boundary chunked reduction.
///
/// Vectors of length ≤ [`DOT_CHUNK`] are identical (bit for bit) to
/// [`vector::dot`]; longer vectors are reduced per fixed 8192-element chunk
/// and the partials summed in chunk order, so the evaluation order — and
/// hence the rounding — depends only on the length, never the thread count.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "parallel::dot: length mismatch");
    if a.len() <= DOT_CHUNK {
        return vector::dot(a, b);
    }
    let partials = map_chunks(a.len(), DOT_CHUNK, 2 * a.len(), |_, r| {
        vector::dot(&a[r.clone()], &b[r])
    });
    partials.iter().sum()
}

/// `y += alpha * x`, element-parallel. Elementwise updates are independent,
/// so any partitioning is bitwise identical to [`vector::axpy`].
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "parallel::axpy: length mismatch");
    for_chunks_mut(y, DOT_CHUNK, 2 * x.len(), |_, off, chunk| {
        vector::axpy(alpha, &x[off..off + chunk.len()], chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the global thread override.
    static KNOB: Mutex<()> = Mutex::new(());

    #[test]
    fn threads_resolves_to_at_least_one() {
        let _g = KNOB.lock().unwrap();
        set_threads(0);
        assert!(threads() >= 1);
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
    }

    #[test]
    fn for_chunks_covers_every_element_once() {
        let _g = KNOB.lock().unwrap();
        for t in [1usize, 2, 5] {
            set_threads(t);
            let mut out = vec![0u32; 1000];
            // Force the parallel path with a large fake work estimate.
            for_chunks_mut(&mut out, 64, usize::MAX, |_, off, chunk| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x += (off + i) as u32;
                }
            });
            assert!(out.iter().enumerate().all(|(i, &x)| x == i as u32));
        }
        set_threads(0);
    }

    #[test]
    fn for_chunks_empty_is_noop() {
        let mut out: Vec<f64> = Vec::new();
        for_chunks_mut(&mut out, 8, usize::MAX, |_, _, _| panic!("no chunks"));
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        let _g = KNOB.lock().unwrap();
        for t in [1usize, 3, 8] {
            set_threads(t);
            let got = map_chunks(103, 10, usize::MAX, |ci, r| (ci, r.start, r.end));
            assert_eq!(got.len(), 11);
            for (ci, (idx, start, end)) in got.iter().enumerate() {
                assert_eq!(*idx, ci);
                assert_eq!(*start, ci * 10);
                assert_eq!(*end, (ci * 10 + 10).min(103));
            }
        }
        set_threads(0);
    }

    #[test]
    fn dot_bitwise_invariant_across_thread_counts() {
        let _g = KNOB.lock().unwrap();
        let n = 3 * DOT_CHUNK + 17;
        let a: Vec<f64> = (0..n)
            .map(|i| ((i * 37 + 5) % 101) as f64 * 0.013)
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 53 + 11) % 97) as f64 * -0.021)
            .collect();
        set_threads(1);
        let serial = dot(&a, &b);
        for t in [2usize, 3, 8] {
            set_threads(t);
            assert_eq!(serial.to_bits(), dot(&a, &b).to_bits(), "threads = {t}");
        }
        set_threads(0);
    }

    #[test]
    fn dot_short_matches_vector_dot_exactly() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        assert_eq!(dot(&a, &b).to_bits(), vector::dot(&a, &b).to_bits());
    }

    #[test]
    fn axpy_matches_serial_axpy() {
        let _g = KNOB.lock().unwrap();
        let n = 2 * DOT_CHUNK + 3;
        let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
        let mut want: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let mut got = want.clone();
        vector::axpy(0.37, &x, &mut want);
        set_threads(4);
        axpy(0.37, &x, &mut got);
        set_threads(0);
        assert!(want
            .iter()
            .zip(&got)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}
