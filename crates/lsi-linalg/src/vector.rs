//! Kernels on `&[f64]` vectors.
//!
//! Free functions rather than a wrapper type: the rest of the workspace deals
//! in plain slices (matrix rows, document vectors), and a newtype would force
//! conversions at every boundary for no safety gain.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the slices differ in length; in release the
/// shorter length is used (standard `zip` semantics), which is never exercised
/// by this workspace's callers.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "distance: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Normalizes `x` to unit Euclidean length in place and returns the original
/// norm. A zero (or denormal-tiny) vector is left untouched and `0.0` is
/// returned so callers can detect breakdown (Lanczos relies on this).
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm(x);
    if n > f64::MIN_POSITIVE {
        scale(1.0 / n, x);
        n
    } else {
        0.0
    }
}

/// Cosine of the angle between `a` and `b`, or `0.0` if either is zero.
///
/// The result is clamped to `[-1, 1]` so that downstream `acos` never sees a
/// value pushed outside the domain by rounding.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na <= f64::MIN_POSITIVE || nb <= f64::MIN_POSITIVE {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Angle in radians between `a` and `b` (the measurement used by the paper's
/// Section 4 experiment, which reports raw angles rather than cosines).
///
/// Returns `π/2` if either vector is zero, the convention that keeps
/// degenerate documents "unrelated to everything".
pub fn angle(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na <= f64::MIN_POSITIVE || nb <= f64::MIN_POSITIVE {
        return std::f64::consts::FRAC_PI_2;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0).acos()
}

/// Subtracts from `v` its component along each row of `basis` (classical
/// Gram–Schmidt step). `basis` rows are assumed orthonormal.
pub fn orthogonalize_against(v: &mut [f64], basis: &[Vec<f64>]) {
    for q in basis {
        let c = dot(v, q);
        axpy(-c, q, v);
    }
}

/// Computes a Householder reflector for `x`: returns `(v, beta)` with
/// `(I − β v vᵀ) x = (∓‖x‖·amax, 0, …, 0)`-shaped (the reflector is
/// invariant to the scaling of `v`, so callers use it as-is).
///
/// Scales by the largest absolute entry first (LAPACK `dlarfg` style) so
/// entries near `1e±154` neither overflow nor underflow when squared — the
/// naive `‖x‖²` would silently produce `beta = 0` and skip the reflection.
/// A zero `x` yields `beta = 0.0` (identity reflector).
pub fn householder_reflector(x: &[f64]) -> (Vec<f64>, f64) {
    let amax = x.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
    if amax <= f64::MIN_POSITIVE || !amax.is_finite() {
        return (x.to_vec(), 0.0);
    }
    let mut v: Vec<f64> = x.iter().map(|&e| e / amax).collect();
    let alpha = norm(&v);
    if alpha <= f64::MIN_POSITIVE {
        return (v, 0.0);
    }
    let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
    v[0] += sign * alpha;
    let beta = 2.0 / norm_sq(&v);
    (v, beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm_pythagorean() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn distance_is_norm_of_difference() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert!((distance(&a, &b) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn normalize_unit_result() {
        let mut v = vec![3.0, 4.0];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm(&v) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_reports_breakdown() {
        let mut v = vec![0.0, 0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn cosine_orthogonal_and_parallel() {
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-15);
        assert!((cosine(&[2.0, 0.0], &[5.0, 0.0]) - 1.0).abs() < 1e-15);
        assert!((cosine(&[1.0, 0.0], &[-3.0, 0.0]) + 1.0).abs() < 1e-15);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn angle_right_angle() {
        let a = angle(&[1.0, 0.0], &[0.0, 2.0]);
        assert!((a - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn angle_zero_vector_convention() {
        assert_eq!(angle(&[0.0, 0.0], &[1.0, 0.0]), std::f64::consts::FRAC_PI_2);
    }

    #[test]
    fn angle_clamps_rounding() {
        // Nearly parallel vectors whose cosine could exceed 1 by rounding.
        let a = [1.0, 1e-8];
        let b = [1.0, 1e-8];
        let theta = angle(&a, &b);
        assert!((0.0..1e-6).contains(&theta));
    }

    #[test]
    fn householder_reflector_annihilates_tail() {
        let x = [3.0, 4.0, 0.0];
        let (v, beta) = householder_reflector(&x);
        // Apply H = I − βvvᵀ to x: result must be (±5·s, 0, 0)-shaped.
        let c = beta * dot(&v, &x);
        let hx: Vec<f64> = x.iter().zip(&v).map(|(xi, vi)| xi - c * vi).collect();
        assert!((hx[0].abs() - 5.0).abs() < 1e-12, "{hx:?}");
        assert!(hx[1].abs() < 1e-12 && hx[2].abs() < 1e-12, "{hx:?}");
    }

    #[test]
    fn householder_reflector_extreme_scales() {
        for &scale in &[1e-300f64, 1e-160, 1e160, 1e300] {
            let x = [3.0 * scale, 4.0 * scale];
            let (v, beta) = householder_reflector(&x);
            assert!(beta > 0.0, "reflector skipped at scale {scale}");
            let c = beta * dot(&v, &x);
            let hx1 = x[1] - c * v[1];
            assert!(
                hx1.abs() < 1e-10 * scale,
                "tail not annihilated at scale {scale}: {hx1}"
            );
        }
    }

    #[test]
    fn householder_reflector_zero_input() {
        let (_, beta) = householder_reflector(&[0.0, 0.0]);
        assert_eq!(beta, 0.0);
    }

    #[test]
    fn orthogonalize_removes_components() {
        let basis = vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]];
        let mut v = vec![3.0, 4.0, 5.0];
        orthogonalize_against(&mut v, &basis);
        assert!(v[0].abs() < 1e-15);
        assert!(v[1].abs() < 1e-15);
        assert!((v[2] - 5.0).abs() < 1e-15);
    }
}
