//! Golub–Kahan Householder bidiagonalization.
//!
//! First phase of the dense SVD: `A = U B Vᵀ` with `B` upper bidiagonal.
//! Requires `m ≥ n`; the SVD driver transposes wide inputs before calling.

use crate::dense::Matrix;
use crate::error::LinalgError;

use crate::Result;

/// Result of bidiagonalizing an `m × n` matrix (`m ≥ n`):
/// `A = U · B · Vᵀ` where `B` is upper bidiagonal with main diagonal `diag`
/// and superdiagonal `superdiag` (`superdiag[k] = B[k][k+1]`).
#[derive(Debug, Clone)]
pub struct Bidiagonal {
    /// `m × n` column-orthonormal left factor.
    pub u: Matrix,
    /// Main diagonal of `B`, length `n`.
    pub diag: Vec<f64>,
    /// Superdiagonal of `B`, length `n - 1` (empty when `n ≤ 1`).
    pub superdiag: Vec<f64>,
    /// `n × n` orthogonal right factor.
    pub v: Matrix,
}

impl Bidiagonal {
    /// Reconstructs `U B Vᵀ` densely; intended for tests.
    pub fn reconstruct(&self) -> Result<Matrix> {
        let n = self.diag.len();
        let mut b = Matrix::zeros(n, n);
        for (k, &d) in self.diag.iter().enumerate() {
            b[(k, k)] = d;
        }
        for (k, &e) in self.superdiag.iter().enumerate() {
            b[(k, k + 1)] = e;
        }
        self.u.matmul(&b)?.matmul(&self.v.transpose())
    }
}

use crate::vector::householder_reflector as householder;

/// Bidiagonalizes a tall matrix (`m ≥ n`). See [`Bidiagonal`].
pub fn bidiagonalize(a: &Matrix) -> Result<Bidiagonal> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::InvalidDimension {
            op: "bidiagonalize",
            detail: format!("need m >= n, got {m}x{n}"),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NotFinite {
            op: "bidiagonalize",
        });
    }

    let mut work = a.clone();
    // Left reflectors act on rows k..m (n of them); right reflectors act on
    // columns k+1..n (n-2 of them, when n > 2).
    let mut left: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n);
    let mut right: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n.saturating_sub(2));

    for k in 0..n {
        // Zero out column k below the diagonal.
        let x: Vec<f64> = (k..m).map(|i| work[(i, k)]).collect();
        let (v, beta) = householder(&x);
        if beta != 0.0 {
            for j in k..n {
                let mut dot = 0.0;
                for (idx, vi) in v.iter().enumerate() {
                    dot += vi * work[(k + idx, j)];
                }
                let s = beta * dot;
                for (idx, vi) in v.iter().enumerate() {
                    work[(k + idx, j)] -= s * vi;
                }
            }
        }
        left.push((v, beta));

        // Zero out row k to the right of the superdiagonal.
        if k + 2 < n {
            let x: Vec<f64> = (k + 1..n).map(|j| work[(k, j)]).collect();
            let (v, beta) = householder(&x);
            if beta != 0.0 {
                for i in k..m {
                    let mut dot = 0.0;
                    for (idx, vi) in v.iter().enumerate() {
                        dot += vi * work[(i, k + 1 + idx)];
                    }
                    let s = beta * dot;
                    for (idx, vi) in v.iter().enumerate() {
                        work[(i, k + 1 + idx)] -= s * vi;
                    }
                }
            }
            right.push((v, beta));
        }
    }

    // Form U (m×n): apply left reflectors in reverse order to I_{m×n}.
    let mut u = Matrix::zeros(m, n);
    for j in 0..n {
        u[(j, j)] = 1.0;
    }
    for k in (0..n).rev() {
        let (v, beta) = &left[k];
        if *beta == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut dot = 0.0;
            for (idx, vi) in v.iter().enumerate() {
                dot += vi * u[(k + idx, j)];
            }
            let s = beta * dot;
            for (idx, vi) in v.iter().enumerate() {
                u[(k + idx, j)] -= s * vi;
            }
        }
    }

    // Form V (n×n): apply right reflectors in reverse order to I_n.
    let mut v_mat = Matrix::identity(n);
    for k in (0..right.len()).rev() {
        let (v, beta) = &right[k];
        if *beta == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut dot = 0.0;
            for (idx, vi) in v.iter().enumerate() {
                dot += vi * v_mat[(k + 1 + idx, j)];
            }
            let s = beta * dot;
            for (idx, vi) in v.iter().enumerate() {
                v_mat[(k + 1 + idx, j)] -= s * vi;
            }
        }
    }

    let diag: Vec<f64> = (0..n).map(|k| work[(k, k)]).collect();
    let superdiag: Vec<f64> = (0..n.saturating_sub(1)).map(|k| work[(k, k + 1)]).collect();

    Ok(Bidiagonal {
        u,
        diag,
        superdiag,
        v: v_mat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormality_error;
    use crate::rng::{gaussian_matrix, seeded};

    #[test]
    fn bidiagonalize_reconstructs_random() {
        let mut rng = seeded(17);
        for &(m, n) in &[(5usize, 5usize), (8, 5), (12, 3), (6, 1), (2, 2)] {
            let a = gaussian_matrix(&mut rng, m, n);
            let bd = bidiagonalize(&a).unwrap();
            let r = bd.reconstruct().unwrap();
            let err = r.max_abs_diff(&a).unwrap();
            assert!(err < 1e-11, "({m},{n}) reconstruction error {err}");
            assert!(orthonormality_error(&bd.u) < 1e-12, "U not orthonormal");
            assert!(orthonormality_error(&bd.v) < 1e-12, "V not orthogonal");
        }
    }

    #[test]
    fn bidiagonal_structure_is_enforced() {
        let mut rng = seeded(23);
        let a = gaussian_matrix(&mut rng, 7, 6);
        let bd = bidiagonalize(&a).unwrap();
        assert_eq!(bd.diag.len(), 6);
        assert_eq!(bd.superdiag.len(), 5);
        // Verify UᵀAV is upper bidiagonal.
        let b = bd.u.transpose_matmul(&a.matmul(&bd.v).unwrap()).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                if j != i && j != i + 1 {
                    assert!(b[(i, j)].abs() < 1e-11, "B[{i},{j}] = {}", b[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn bidiagonalize_zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let bd = bidiagonalize(&a).unwrap();
        assert!(bd.diag.iter().all(|&d| d == 0.0));
        assert!(bd.superdiag.iter().all(|&e| e == 0.0));
        assert!(bd.reconstruct().unwrap().max_abs_diff(&a).unwrap() < 1e-15);
    }

    #[test]
    fn bidiagonalize_rejects_wide() {
        let a = Matrix::zeros(2, 4);
        assert!(bidiagonalize(&a).is_err());
    }

    #[test]
    fn bidiagonalize_rejects_nan() {
        let mut a = Matrix::zeros(3, 2);
        a[(0, 0)] = f64::INFINITY;
        assert!(bidiagonalize(&a).is_err());
    }

    #[test]
    fn single_column() {
        let a = Matrix::from_rows(&[&[3.0], &[4.0]]).unwrap();
        let bd = bidiagonalize(&a).unwrap();
        assert!((bd.diag[0].abs() - 5.0).abs() < 1e-12);
        assert!(bd.superdiag.is_empty());
    }
}
