//! Row-major dense matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::error::LinalgError;
use crate::parallel;
use crate::vector;
use crate::Result;

/// Rows per transpose-matmul chunk: fixed so chunk boundaries (and hence
/// results) never depend on the thread count.
const MATMUL_ROW_GRAIN: usize = 8;
/// Rows per matvec chunk.
const MATVEC_ROW_GRAIN: usize = 64;
/// Output columns per transpose-side chunk.
const COL_GRAIN: usize = 512;

/// A dense, row-major `f64` matrix.
///
/// Row-major storage matches the access pattern of the IR layer (documents
/// are processed row- or column-at-a-time) and lets rows be handed out as
/// plain slices.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row-major data; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidDimension {
                op: "from_vec",
                detail: format!("data length {} != rows*cols = {}", data.len(), rows * cols),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds from a slice of equal-length rows.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != c {
                return Err(LinalgError::InvalidDimension {
                    op: "from_rows",
                    detail: format!("row {i} has length {}, expected {c}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Builds a `rows × cols` matrix whose `(i, j)` entry is `f(i, j)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Diagonal matrix from `diag`.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes `self`, returning the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a fresh vector. Row-major storage means a
    /// column is strided; callers that need repeated column access should
    /// transpose once instead.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols, "column index out of bounds");
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Overwrites column `j` with `v`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        debug_assert_eq!(v.len(), self.rows, "set_col: length mismatch");
        for (i, &x) in v.iter().enumerate() {
            self.data[i * self.cols + j] = x;
        }
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &x) in row.iter().enumerate() {
                t.data[j * self.rows + i] = x;
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Runs the packed, cache-blocked [`crate::gemm`] kernel: row panels
    /// are distributed over the [`parallel`] executor and each panel runs a
    /// register-tiled micro-kernel over packed operands. The result is
    /// bitwise identical to [`crate::gemm::gemm_reference`] (the classic
    /// ascending-`k` i-k-j loop) for every thread count — see the `gemm`
    /// module docs for the contract.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::gemm::gemm(
            self.rows,
            rhs.cols,
            self.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        )?;
        Ok(out)
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    ///
    /// Parallel over blocks of output rows (columns of `self`); every
    /// output element accumulates its `k` terms in ascending order, so the
    /// result matches the serial kernel bit for bit.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "transpose_matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        let n = rhs.cols;
        let work = self
            .rows
            .saturating_mul(self.cols)
            .saturating_mul(n)
            .saturating_mul(2);
        parallel::for_chunks_mut(
            &mut out.data,
            MATMUL_ROW_GRAIN * n.max(1),
            work,
            |_, offset, chunk| {
                let i0 = offset / n;
                for k in 0..self.rows {
                    let a_row = self.row(k);
                    let b_row = rhs.row(k);
                    for (r, out_row) in chunk.chunks_mut(n).enumerate() {
                        let aki = a_row[i0 + r];
                        if aki == 0.0 {
                            continue;
                        }
                        vector::axpy(aki, b_row, out_row);
                    }
                }
            },
        );
        Ok(out)
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out)?;
        Ok(out)
    }

    /// Matrix–vector product `self * x` written into a caller-provided
    /// buffer (`out.len()` must equal `nrows`): the allocation-free form
    /// iterative solvers call in a loop. Row blocks run on the [`parallel`]
    /// executor; each element is the same [`vector::dot`] as the serial
    /// kernel.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.cols || out.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_into",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        let work = self.rows.saturating_mul(self.cols).saturating_mul(2);
        parallel::for_chunks_mut(out, MATVEC_ROW_GRAIN, work, |_, offset, chunk| {
            for (r, o) in chunk.iter_mut().enumerate() {
                *o = vector::dot(self.row(offset + r), x);
            }
        });
        Ok(())
    }

    /// Dots a block of rows against a batch of query vectors — the batched
    /// scoring kernel behind coalesced query serving: one pass over the row
    /// block serves every query in the batch, amortizing the row-matrix
    /// memory traffic that per-query scans pay repeatedly.
    ///
    /// Writes `out[r * queries.len() + q] =
    /// vector::dot(queries[q], self.row(row0 + r))` for `r` in `0..rows` —
    /// note the query is the *first* `dot` operand, exactly as in a
    /// per-query scan, so every output element is bit-identical to the
    /// unbatched computation for any batch composition. Structurally this
    /// is a GEMM (`rows × cols` block times `cols × nq` query matrix), but
    /// each element deliberately uses the [`vector::dot`] rounding sequence
    /// (no zero-skip) rather than the packed [`crate::gemm`] kernel, so
    /// batched and sequential scoring agree bit for bit even on signed
    /// zeros. Row blocks run on the [`parallel`] executor; elements are
    /// independent, so any thread count produces identical bytes.
    ///
    /// Errors if `row0 + rows` overflows the matrix, any query length
    /// differs from `ncols`, or `out.len() != rows * queries.len()`.
    pub fn dot_rows_batch_into(
        &self,
        row0: usize,
        rows: usize,
        queries: &[&[f64]],
        out: &mut [f64],
    ) -> Result<()> {
        let nq = queries.len();
        if row0.checked_add(rows).is_none_or(|end| end > self.rows)
            || out.len() != rows.saturating_mul(nq)
        {
            return Err(LinalgError::InvalidDimension {
                op: "dot_rows_batch_into",
                detail: format!(
                    "rows {row0}..{row0}+{rows} of {} with {} queries into {} outputs",
                    self.rows,
                    nq,
                    out.len()
                ),
            });
        }
        if let Some(q) = queries.iter().find(|q| q.len() != self.cols) {
            return Err(LinalgError::ShapeMismatch {
                op: "dot_rows_batch_into",
                left: self.shape(),
                right: (q.len(), 1),
            });
        }
        let work = rows
            .saturating_mul(self.cols)
            .saturating_mul(nq)
            .saturating_mul(2);
        if nq == 0 {
            return Ok(());
        }
        parallel::for_chunks_mut(out, MATVEC_ROW_GRAIN * nq, work, |_, offset, chunk| {
            let r0 = offset / nq;
            for (r, out_row) in chunk.chunks_mut(nq).enumerate() {
                let row = self.row(row0 + r0 + r);
                for (o, q) in out_row.iter_mut().zip(queries) {
                    *o = vector::dot(q, row);
                }
            }
        });
        Ok(())
    }

    /// `selfᵀ * x`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.cols];
        self.matvec_transpose_into(x, &mut out)?;
        Ok(out)
    }

    /// `selfᵀ * x` into a caller-provided buffer (`out.len()` must equal
    /// `ncols`). Parallel over output-column blocks: each block accumulates
    /// the rows in ascending order, exactly like the serial single-pass
    /// axpy loop, so results are bitwise thread-count-invariant.
    pub fn matvec_transpose_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.rows || out.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_transpose_into",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        let cols = self.cols;
        let work = self.rows.saturating_mul(cols).saturating_mul(2);
        parallel::for_chunks_mut(out, COL_GRAIN, work, |_, offset, chunk| {
            chunk.fill(0.0);
            let w = chunk.len();
            for (i, &xi) in x.iter().enumerate() {
                let row_slab = &self.data[i * cols + offset..i * cols + offset + w];
                vector::axpy(xi, row_slab, chunk);
            }
        });
        Ok(())
    }

    /// Elementwise sum.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        let mut out = self.clone();
        vector::scale(alpha, &mut out.data);
        out
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// The first `k` columns as a new `rows × k` matrix.
    pub fn columns_prefix(&self, k: usize) -> Result<Matrix> {
        if k > self.cols {
            return Err(LinalgError::InvalidDimension {
                op: "columns_prefix",
                detail: format!("k={k} > ncols={}", self.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, k);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        Ok(out)
    }

    /// The first `k` rows as a new `k × cols` matrix.
    pub fn rows_prefix(&self, k: usize) -> Result<Matrix> {
        if k > self.rows {
            return Err(LinalgError::InvalidDimension {
                op: "rows_prefix",
                detail: format!("k={k} > nrows={}", self.rows),
            });
        }
        Ok(Matrix {
            rows: k,
            cols: self.cols,
            data: self.data[..k * self.cols].to_vec(),
        })
    }

    /// Appends a row (the matrix grows by one row; length must match
    /// `ncols`, except that any row length is accepted when the matrix has
    /// zero rows, defining the column count).
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        if row.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "push_row",
                left: (self.rows, self.cols),
                right: (1, row.len()),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute entrywise difference to `rhs`; `None` on shape
    /// mismatch. A NaN anywhere yields `Some(NaN)` (it is *not* silently
    /// dropped, as a naive `f64::max` fold would). Convenient for tests.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Option<f64> {
        if self.shape() != rhs.shape() {
            return None;
        }
        Some(self.data.iter().zip(&rhs.data).fold(0.0f64, |acc, (a, b)| {
            let d = (a - b).abs();
            if acc.is_nan() || d.is_nan() {
                f64::NAN
            } else {
                acc.max(d)
            }
        }))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            let row = self.row(i);
            let shown: Vec<String> = row.iter().take(8).map(|x| format!("{x:>10.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.max_abs_diff(b).is_some_and(|d| d <= tol)
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
    }

    #[test]
    fn from_fn_fills_entries() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn set_col_roundtrip() {
        let mut m = Matrix::zeros(3, 2);
        m.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.col(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert!(approx_eq(&t.transpose(), &m, 0.0));
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(approx_eq(&c, &expect, 1e-14));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |i, j| (i + 2 * j) as f64);
        let c = a.matmul(&Matrix::identity(3)).unwrap();
        assert!(approx_eq(&c, &a, 0.0));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_matmul_agrees_with_explicit() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.5);
        let b = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
        let fast = a.transpose_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(approx_eq(&fast, &slow, 1e-12));
    }

    #[test]
    fn matvec_and_transpose_agree_with_matmul() {
        let a = Matrix::from_fn(3, 4, |i, j| ((i + 1) * (j + 2)) as f64);
        let x = vec![1.0, -1.0, 2.0, 0.5];
        let y = a.matvec(&x).unwrap();
        for (i, yi) in y.iter().enumerate() {
            assert!((yi - vector::dot(a.row(i), &x)).abs() < 1e-13);
        }
        let z = a.matvec_transpose(&y).unwrap();
        let via_t = a.transpose().matvec(&y).unwrap();
        for (u, v) in z.iter().zip(&via_t) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn dot_rows_batch_matches_per_query_dots_bitwise() {
        let m = Matrix::from_fn(9, 5, |i, j| ((i * 5 + j) as f64 * 0.37).sin());
        let q0: Vec<f64> = (0..5).map(|i| (i as f64 * 1.1).cos()).collect();
        let q1: Vec<f64> = (0..5).map(|i| (i as f64) - 2.0).collect();
        let queries: Vec<&[f64]> = vec![&q0, &q1];
        let mut out = vec![0.0; 3 * 2];
        m.dot_rows_batch_into(4, 3, &queries, &mut out).unwrap();
        for r in 0..3 {
            for (q, qv) in queries.iter().enumerate() {
                assert_eq!(
                    out[r * 2 + q].to_bits(),
                    vector::dot(qv, m.row(4 + r)).to_bits()
                );
            }
        }
        // Empty batch and empty block are no-ops.
        m.dot_rows_batch_into(0, 9, &[], &mut []).unwrap();
        m.dot_rows_batch_into(9, 0, &queries, &mut []).unwrap();
        // Shape errors are typed.
        assert!(m.dot_rows_batch_into(8, 2, &queries, &mut out).is_err());
        assert!(m
            .dot_rows_batch_into(0, 1, &[&q0[..4]], &mut out[..1])
            .is_err());
        assert!(m
            .dot_rows_batch_into(0, 3, &queries, &mut out[..5])
            .is_err());
    }

    #[test]
    fn matvec_wrong_length_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(a.matvec(&[1.0, 2.0]).is_err());
        assert!(a.matvec_transpose(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(2, 2, |i, j| (i * j) as f64 + 1.0);
        let s = a.add(&b).unwrap().sub(&b).unwrap();
        assert!(approx_eq(&s, &a, 1e-15));
    }

    #[test]
    fn scaled_scales() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]).unwrap();
        let s = a.scaled(-3.0);
        assert_eq!(s.as_slice(), &[-3.0, 6.0]);
    }

    #[test]
    fn columns_prefix_takes_leading_block() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let p = m.columns_prefix(2).unwrap();
        let expect = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 5.0]]).unwrap();
        assert!(approx_eq(&p, &expect, 0.0));
        assert!(m.columns_prefix(4).is_err());
    }

    #[test]
    fn rows_prefix_takes_leading_block() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let p = m.rows_prefix(2).unwrap();
        assert_eq!(p.shape(), (2, 2));
        assert_eq!(p.row(1), &[3.0, 4.0]);
        assert!(m.rows_prefix(4).is_err());
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert!(m.push_row(&[1.0]).is_err());
        // Empty matrix adopts the first row's width.
        let mut e = Matrix::zeros(0, 0);
        e.push_row(&[7.0, 8.0, 9.0]).unwrap();
        assert_eq!(e.shape(), (1, 3));
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.is_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn debug_format_does_not_panic_on_large() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 100x100"));
    }
}
