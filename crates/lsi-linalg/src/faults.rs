//! Seeded fault injection for linear operators.
//!
//! [`FaultyOperator`] wraps any [`LinearOperator`] and corrupts its
//! matrix–vector products according to a [`FaultPlan`]: NaN injection,
//! zeroed columns, magnitude spikes, or a simulated hard breakdown. Every
//! corruption is a deterministic function of the plan's seed and the
//! operator's global apply counter, so a failing run reproduces exactly.
//!
//! Faults are *windowed* over the apply counter (each [`apply`] or
//! [`apply_transpose`] call increments it once): a window covering only the
//! first few products models a transient fault that a retrying solver can
//! ride out, while an unbounded window models a persistently corrupted
//! operator that every backend must fail on — loudly, with a typed error.
//!
//! This module exists to *test* the resilient solve driver in
//! [`crate::solver`]; production code paths never construct a
//! [`FaultyOperator`].
//!
//! [`apply`]: LinearOperator::apply
//! [`apply_transpose`]: LinearOperator::apply_transpose

use std::cell::Cell;

use rand::Rng;

use crate::error::LinalgError;
use crate::operator::LinearOperator;
use crate::rng::seeded;
use crate::Result;

/// One way a matrix–vector product can be corrupted.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Each output entry is independently replaced by NaN with the given
    /// probability (at least one entry is always hit while the fault is
    /// active, so a tiny probability still injects).
    NanInjection {
        /// Per-entry corruption probability in `[0, 1]`.
        probability: f64,
    },
    /// The operator behaves as if column `column` of the underlying matrix
    /// were zero: forward products ignore `x[column]`, transpose products
    /// zero `y[column]`. Out-of-range columns are ignored.
    ZeroColumn {
        /// Index of the column to suppress.
        column: usize,
    },
    /// Each output entry is independently multiplied by `scale` with the
    /// given probability (at least one entry is always hit while active),
    /// modelling bit-flip-like magnitude excursions.
    MagnitudeSpike {
        /// Multiplier applied to corrupted entries (e.g. `1e150`).
        scale: f64,
        /// Per-entry corruption probability in `[0, 1]`.
        probability: f64,
    },
    /// The product fails outright with [`LinalgError::NotFinite`],
    /// simulating a hard numerical breakdown inside the kernel.
    Breakdown,
}

/// A [`FaultKind`] active over a window of apply-counter values.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// What corruption to apply.
    pub kind: FaultKind,
    /// First apply index (inclusive) at which the fault is active.
    pub from_apply: usize,
    /// Last apply index (exclusive); use `usize::MAX` for a persistent
    /// fault.
    pub until_apply: usize,
}

impl Fault {
    fn active(&self, apply_index: usize) -> bool {
        (self.from_apply..self.until_apply).contains(&apply_index)
    }
}

/// A seeded, ordered set of faults to inject into an operator.
///
/// # Examples
///
/// ```
/// use lsi_linalg::faults::{FaultKind, FaultPlan, FaultyOperator};
/// use lsi_linalg::{LinearOperator, Matrix};
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// // NaNs in the first 2 products, clean afterwards.
/// let plan = FaultPlan::new(7).with_fault(
///     FaultKind::NanInjection { probability: 0.5 },
///     0,
///     2,
/// );
/// let faulty = FaultyOperator::new(&a, plan);
/// let y = faulty.apply(&[1.0, 1.0]).unwrap();
/// assert!(y.iter().any(|v| v.is_nan()));
/// // After the window closes the operator is clean again.
/// faulty.apply(&[1.0, 1.0]).unwrap();
/// let clean = faulty.apply(&[1.0, 1.0]).unwrap();
/// assert!(clean.iter().all(|v| v.is_finite()));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed from which every stochastic corruption is derived.
    pub seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault active on apply indices `[from_apply, until_apply)`.
    pub fn with_fault(mut self, kind: FaultKind, from_apply: usize, until_apply: usize) -> Self {
        self.faults.push(Fault {
            kind,
            from_apply,
            until_apply,
        });
        self
    }

    /// The configured faults, in injection order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when no fault is ever active.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// A [`LinearOperator`] whose products are corrupted per a [`FaultPlan`].
///
/// The wrapper keeps a global apply counter (shared between forward and
/// transpose products, and therefore also advanced by
/// [`LinearOperator::to_dense`], which is built from forward products) so
/// fault windows line up with "step N" of whatever algorithm is driving the
/// operator.
#[derive(Debug)]
pub struct FaultyOperator<'a, Op: LinearOperator + ?Sized> {
    inner: &'a Op,
    plan: FaultPlan,
    applies: Cell<usize>,
}

impl<'a, Op: LinearOperator + ?Sized> FaultyOperator<'a, Op> {
    /// Wraps `inner`, corrupting its products according to `plan`.
    pub fn new(inner: &'a Op, plan: FaultPlan) -> Self {
        FaultyOperator {
            inner,
            plan,
            applies: Cell::new(0),
        }
    }

    /// Total products (forward + transpose) performed so far.
    pub fn applies(&self) -> usize {
        self.applies.get()
    }

    /// The injection plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Corrupts `out` in place per every fault active at `idx`. `transpose`
    /// selects which side a [`FaultKind::ZeroColumn`] masks.
    fn corrupt(&self, out: &mut [f64], idx: usize, transpose: bool) -> Result<()> {
        for fault in &self.plan.faults {
            if !fault.active(idx) {
                continue;
            }
            match fault.kind {
                FaultKind::Breakdown => {
                    return Err(LinalgError::NotFinite {
                        op: "faulty_operator::breakdown",
                    });
                }
                FaultKind::NanInjection { probability } => {
                    corrupt_entries(out, self.plan.seed, idx, probability, |_| f64::NAN);
                }
                FaultKind::MagnitudeSpike { scale, probability } => {
                    corrupt_entries(out, self.plan.seed, idx, probability, |x| x * scale);
                }
                FaultKind::ZeroColumn { column } => {
                    // Transpose output lives in column space; the forward
                    // side is handled by masking the input instead.
                    if transpose {
                        if let Some(v) = out.get_mut(column) {
                            *v = 0.0;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Input mask for forward products: zeroes coordinates of `x` that a
    /// [`FaultKind::ZeroColumn`] active at `idx` suppresses.
    fn masked_input(&self, x: &[f64], idx: usize) -> Option<Vec<f64>> {
        let mut masked: Option<Vec<f64>> = None;
        for fault in &self.plan.faults {
            if let FaultKind::ZeroColumn { column } = fault.kind {
                if fault.active(idx) && column < x.len() {
                    let m = masked.get_or_insert_with(|| x.to_vec());
                    m[column] = 0.0;
                }
            }
        }
        masked
    }

    fn next_index(&self) -> usize {
        let idx = self.applies.get();
        self.applies.set(idx + 1);
        idx
    }
}

/// Applies `f` to each entry independently with probability `p`, forcing at
/// least one hit. Deterministic in `(seed, apply_index)`.
fn corrupt_entries(out: &mut [f64], seed: u64, apply_index: usize, p: f64, f: impl Fn(f64) -> f64) {
    if out.is_empty() {
        return;
    }
    // SplitMix64-style mix so nearby apply indices get unrelated streams.
    let mixed = seed ^ (apply_index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut rng = seeded(mixed);
    let forced = rng.gen_range(0..out.len());
    for (i, v) in out.iter_mut().enumerate() {
        if i == forced || rng.gen_bool(p.clamp(0.0, 1.0)) {
            *v = f(*v);
        }
    }
}

impl<Op: LinearOperator + ?Sized> LinearOperator for FaultyOperator<'_, Op> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        let idx = self.next_index();
        let mut y = match self.masked_input(x, idx) {
            Some(masked) => self.inner.apply(&masked)?,
            None => self.inner.apply(x)?,
        };
        self.corrupt(&mut y, idx, false)?;
        Ok(y)
    }

    fn apply_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        let idx = self.next_index();
        let mut y = self.inner.apply_transpose(x)?;
        self.corrupt(&mut y, idx, true)?;
        Ok(y)
    }
}

/// A simulated crash location in a byte stream: exactly the first
/// [`offset`](Self::offset) bytes survive; everything after is lost.
///
/// This is the write-side sibling of [`FaultKind`]: where operator faults
/// corrupt matrix–vector products, a crash point models a process (or
/// kernel) dying mid-write, leaving an arbitrary prefix of the intended
/// bytes on disk. Crash-consistency harnesses enumerate every boundary
/// with [`CrashPoint::enumerate`] and assert that recovery from each
/// resulting prefix yields a valid state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    offset: u64,
}

impl CrashPoint {
    /// A crash after exactly `offset` bytes have reached the device.
    pub fn after(offset: u64) -> Self {
        Self { offset }
    }

    /// The number of leading bytes that survive this crash.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Every crash point of a `len`-byte stream: after 0 bytes, after 1,
    /// …, after `len` (the final point is "no crash at all").
    pub fn enumerate(len: usize) -> impl Iterator<Item = CrashPoint> {
        (0..=len as u64).map(CrashPoint::after)
    }
}

/// The way a byte stream's writes start failing once a boundary is
/// crossed: the write-side fault taxonomy.
///
/// Every variant triggers after `after` bytes have been accepted. The
/// variants model distinct real-world failures with distinct observable
/// signatures, so persistence paths can prove they map each one to a
/// typed error (or ride it out) while leaving exact pre-state:
///
/// * [`Crash`](Self::Crash) — process/kernel death mid-write: the prefix
///   survives, every write at or past the boundary fails with
///   [`std::io::ErrorKind::Other`], permanently.
/// * [`Enospc`](Self::Enospc) — device full: the prefix survives, the
///   crossing write and all later ones fail with
///   [`std::io::ErrorKind::StorageFull`] (the disk stays full).
/// * [`ShortWrite`](Self::ShortWrite) — the device accepts a partial
///   write, then accepts nothing: the crossing call returns `Ok(prefix)`
///   and later calls return `Ok(0)`, which `write_all` surfaces as
///   [`std::io::ErrorKind::WriteZero`].
/// * [`Transient`](Self::Transient) — a retryable hiccup: the crossing
///   write fails with [`std::io::ErrorKind::WouldBlock`] (committing
///   nothing) `failures` times, then everything succeeds. A bounded
///   retry-with-backoff rides this out; a non-retrying path surfaces it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Process death after `after` bytes: prefix survives, then hard
    /// errors forever.
    Crash {
        /// Bytes accepted before the fault.
        after: u64,
    },
    /// Device full after `after` bytes: prefix survives, then
    /// `StorageFull` forever.
    Enospc {
        /// Bytes accepted before the fault.
        after: u64,
    },
    /// Partial acceptance after `after` bytes, then `Ok(0)` (→
    /// `WriteZero` under `write_all`).
    ShortWrite {
        /// Bytes accepted before the fault.
        after: u64,
    },
    /// `failures` retryable `WouldBlock` errors at the boundary, then
    /// clean writes (nothing is lost).
    Transient {
        /// Bytes accepted before the fault first fires.
        after: u64,
        /// How many times the fault fires before clearing.
        failures: u32,
    },
}

/// Mutable progress of one armed [`WriteFault`] (bytes committed, times
/// fired). Shared by [`FaultyWriter`] and any external injector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultState {
    /// Bytes committed to the underlying writer so far.
    pub written: u64,
    /// Times the fault has fired so far.
    pub fired: u32,
}

impl WriteFault {
    /// The byte boundary at which this fault triggers.
    pub fn after(&self) -> u64 {
        match *self {
            WriteFault::Crash { after }
            | WriteFault::Enospc { after }
            | WriteFault::ShortWrite { after }
            | WriteFault::Transient { after, .. } => after,
        }
    }

    /// Decides the fate of a `len`-byte write given prior progress:
    /// returns how many leading bytes to commit and the error (if any) to
    /// return after committing them. `(n, None)` with `n < len` is a
    /// short write (`Ok(n)`; `n == 0` becomes `WriteZero` under
    /// `write_all`). The caller must add the committed count to
    /// `state.written` itself, after the commit actually succeeds.
    pub fn decide(&self, state: &mut FaultState, len: usize) -> (usize, Option<std::io::Error>) {
        let room =
            usize::try_from(self.after().saturating_sub(state.written)).unwrap_or(usize::MAX);
        if len <= room {
            return (len, None);
        }
        match *self {
            WriteFault::Crash { after } => {
                state.fired += 1;
                (
                    room,
                    Some(std::io::Error::other(format!(
                        "injected crash after {after} byte(s)"
                    ))),
                )
            }
            WriteFault::Enospc { after } => {
                state.fired += 1;
                (
                    room,
                    Some(std::io::Error::new(
                        std::io::ErrorKind::StorageFull,
                        format!("injected ENOSPC after {after} byte(s)"),
                    )),
                )
            }
            WriteFault::ShortWrite { .. } => (room, None),
            WriteFault::Transient { failures, .. } => {
                if state.fired < failures {
                    state.fired += 1;
                    (
                        0,
                        Some(std::io::Error::new(
                            std::io::ErrorKind::WouldBlock,
                            "injected transient i/o fault",
                        )),
                    )
                } else {
                    (len, None)
                }
            }
        }
    }
}

/// An [`std::io::Write`] adapter that injects a [`WriteFault`] into the
/// stream, modelling torn writes, full devices, short writes, and
/// transient hiccups.
///
/// Writes pass through unchanged until the fault's byte boundary; the
/// write that crosses it behaves per the fault's contract (see
/// [`WriteFault`]). For [`WriteFault::Crash`] the inner writer afterwards
/// holds exactly the bytes a crashed process would have left on disk.
#[derive(Debug)]
pub struct FaultyWriter<W: std::io::Write> {
    inner: W,
    fault: WriteFault,
    state: FaultState,
}

impl<W: std::io::Write> FaultyWriter<W> {
    /// Wraps `inner`, cutting the stream at `crash` (the original torn
    /// write model; equivalent to [`WriteFault::Crash`]).
    pub fn new(inner: W, crash: CrashPoint) -> Self {
        Self::with_fault(
            inner,
            WriteFault::Crash {
                after: crash.offset(),
            },
        )
    }

    /// Wraps `inner`, injecting `fault` at its byte boundary.
    pub fn with_fault(inner: W, fault: WriteFault) -> Self {
        Self {
            inner,
            fault,
            state: FaultState::default(),
        }
    }

    /// Bytes that reached the inner writer so far.
    pub fn written(&self) -> u64 {
        self.state.written
    }

    /// True once the fault boundary has been reached or the fault has
    /// fired at least once.
    pub fn crashed(&self) -> bool {
        self.state.written >= self.fault.after() || self.state.fired > 0
    }

    /// Unwraps the inner writer (the simulated on-disk state).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: std::io::Write> std::io::Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let (commit, err) = self.fault.decide(&mut self.state, buf.len());
        self.inner.write_all(&buf[..commit])?;
        self.state.written += commit as u64;
        match err {
            Some(e) => Err(e),
            None => Ok(commit),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn empty_plan_is_transparent() {
        let a = sample();
        let f = FaultyOperator::new(&a, FaultPlan::new(1));
        let x = vec![1.0, -1.0, 0.5];
        assert_eq!(f.apply(&x).unwrap(), a.matvec(&x).unwrap());
        let y = vec![2.0, -3.0];
        assert_eq!(
            f.apply_transpose(&y).unwrap(),
            a.matvec_transpose(&y).unwrap()
        );
        assert_eq!(f.applies(), 2);
    }

    #[test]
    fn nan_injection_hits_within_window_only() {
        let a = sample();
        let plan = FaultPlan::new(3).with_fault(FaultKind::NanInjection { probability: 0.0 }, 1, 2);
        let f = FaultyOperator::new(&a, plan);
        let x = vec![1.0, 1.0, 1.0];
        assert!(f.apply(&x).unwrap().iter().all(|v| v.is_finite()));
        // Even probability 0.0 forces one hit while active.
        assert!(f.apply(&x).unwrap().iter().any(|v| v.is_nan()));
        assert!(f.apply(&x).unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nan_injection_is_deterministic_in_seed() {
        let a = sample();
        let mk = || {
            let plan =
                FaultPlan::new(9).with_fault(FaultKind::NanInjection { probability: 0.4 }, 0, 10);
            FaultyOperator::new(&a, plan)
        };
        let (f, g) = (mk(), mk());
        let x = vec![1.0, 2.0, 3.0];
        for _ in 0..5 {
            let yf = f.apply(&x).unwrap();
            let yg = g.apply(&x).unwrap();
            let nf: Vec<bool> = yf.iter().map(|v| v.is_nan()).collect();
            let ng: Vec<bool> = yg.iter().map(|v| v.is_nan()).collect();
            assert_eq!(nf, ng);
        }
    }

    #[test]
    fn zero_column_masks_both_directions() {
        let a = sample();
        let plan = FaultPlan::new(0).with_fault(FaultKind::ZeroColumn { column: 1 }, 0, usize::MAX);
        let f = FaultyOperator::new(&a, plan);
        // Forward: x[1] is ignored.
        let y = f.apply(&[0.0, 1.0, 0.0]).unwrap();
        assert_eq!(y, vec![0.0, 0.0]);
        // Transpose: output coordinate 1 is zeroed.
        let t = f.apply_transpose(&[1.0, 0.0]).unwrap();
        assert_eq!(t[1], 0.0);
        assert_eq!(t[0], 1.0);
        assert_eq!(t[2], 3.0);
    }

    #[test]
    fn magnitude_spike_scales_entries() {
        let a = sample();
        let plan = FaultPlan::new(5).with_fault(
            FaultKind::MagnitudeSpike {
                scale: 1e100,
                probability: 0.0,
            },
            0,
            1,
        );
        let f = FaultyOperator::new(&a, plan);
        let y = f.apply(&[1.0, 1.0, 1.0]).unwrap();
        assert!(y.iter().any(|v| v.abs() >= 1e99));
    }

    #[test]
    fn breakdown_returns_typed_error() {
        let a = sample();
        let plan = FaultPlan::new(0).with_fault(FaultKind::Breakdown, 2, 3);
        let f = FaultyOperator::new(&a, plan);
        let x = vec![1.0, 1.0, 1.0];
        assert!(f.apply(&x).is_ok());
        assert!(f.apply(&x).is_ok());
        assert!(matches!(f.apply(&x), Err(LinalgError::NotFinite { .. })));
        // Counter still advanced: the window has passed.
        assert!(f.apply(&x).is_ok());
    }

    #[test]
    fn out_of_range_zero_column_is_ignored() {
        let a = sample();
        let plan =
            FaultPlan::new(0).with_fault(FaultKind::ZeroColumn { column: 99 }, 0, usize::MAX);
        let f = FaultyOperator::new(&a, plan);
        let x = vec![1.0, 1.0, 1.0];
        assert_eq!(f.apply(&x).unwrap(), a.matvec(&x).unwrap());
    }

    #[test]
    fn faulty_writer_commits_exactly_the_prefix() {
        use std::io::Write;
        let payload = b"0123456789abcdef";
        for crash in CrashPoint::enumerate(payload.len()) {
            let mut w = FaultyWriter::new(Vec::new(), crash);
            // Write in awkward chunk sizes to cross the boundary mid-call.
            let result = payload.chunks(3).try_for_each(|c| w.write_all(c));
            let cut = crash.offset() as usize;
            if cut < payload.len() {
                assert!(result.is_err(), "crash at {cut} must error");
                assert!(w.crashed());
            } else {
                assert!(result.is_ok());
            }
            assert_eq!(w.written(), cut as u64);
            assert_eq!(w.into_inner(), payload[..cut].to_vec());
        }
    }

    #[test]
    fn crash_point_enumeration_covers_both_ends() {
        let points: Vec<_> = CrashPoint::enumerate(4).collect();
        assert_eq!(points.len(), 5);
        assert_eq!(points[0].offset(), 0);
        assert_eq!(points[4].offset(), 4);
    }
}
