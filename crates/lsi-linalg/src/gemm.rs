//! Blocked, packed GEMM with a register-tiled micro-kernel.
//!
//! This is the BLIS/GotoBLAS decomposition of `C = A · B` adapted to the
//! crate's determinism rules:
//!
//! * the column dimension is split into `nc`-wide panels (`jc` loop),
//! * the inner dimension into `kc`-deep blocks (`pc` loop),
//! * rows into `mc`-tall panels (the [`parallel`] chunk),
//!
//! with the A and B operand blocks copied into contiguous pack buffers
//! ([`crate::pack`]) so the innermost loops stream cache-resident,
//! unit-stride micro-panels into an [`MR`]×[`NR`] register tile.
//!
//! # Bitwise contract
//!
//! Every output element accumulates its `k` terms in ascending order — one
//! multiplication rounding and one addition rounding per term, skipping
//! zero A entries — exactly like [`gemm_reference`]. Block boundaries
//! (`kc`/`mc`/`nc`) and pack layouts depend only on the problem size, never
//! on the thread count, and row panels are distributed by
//! [`parallel::for_chunks_mut`], so `gemm` is bitwise identical to the
//! serial reference for every `LSI_THREADS` value, every scalar type, and
//! every shape (enforced by `tests/determinism.rs`).
//!
//! The element type is an explicit parameter: `f64` is the default used by
//! [`crate::Matrix::matmul`]; an `f32` path is available by instantiating
//! [`gemm::<f32>`] directly (opt-in — nothing in the crate silently
//! downgrades precision).

use crate::error::LinalgError;
use crate::pack::{pack_a, pack_b, MR, NR};
use crate::parallel;
use crate::Result;

/// Element types the packed GEMM accepts.
///
/// Implemented for `f64` (the crate default) and `f32` (opt-in reduced
/// precision). The trait is deliberately minimal: the kernels only need
/// copy, comparison against zero (for the zero-skip), addition and
/// multiplication — each of which must be IEEE-754 correctly rounded so the
/// bitwise contract holds on any hardware.
pub trait Scalar:
    Copy
    + PartialEq
    + Send
    + Sync
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Mul<Output = Self>
    + 'static
{
    /// Additive identity (`+0.0`).
    const ZERO: Self;
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
}

impl Scalar for f32 {
    const ZERO: f32 = 0.0;
}

/// Maximum depth of a packed `kc` block (inner dimension).
pub const KC_MAX: usize = 256;
/// Maximum height of a row panel (one [`parallel`] chunk), a multiple of
/// [`MR`].
pub const MC_MAX: usize = 64;
/// Maximum width of a column panel, a multiple of [`NR`].
pub const NC_MAX: usize = 4096;

/// Cache-block sizes for one GEMM invocation.
///
/// Derived from the operand shape alone — never from the thread count —
/// so chunk boundaries, pack layouts, and therefore output bits are
/// identical for every `LSI_THREADS` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPlan {
    /// Rows per packed A panel / parallel chunk.
    pub mc: usize,
    /// Depth per packed block.
    pub kc: usize,
    /// Columns per packed B panel.
    pub nc: usize,
}

/// Picks cache-block sizes for an `m × k · k × n` product.
///
/// The policy is size-only: clamp each dimension to a fixed cap chosen so
/// one A panel (`mc × kc`) stays L2-resident and one B block (`kc × nc`)
/// stays in the outer cache.
pub fn block_plan(m: usize, n: usize, k: usize) -> BlockPlan {
    BlockPlan {
        mc: MC_MAX.min(m.next_multiple_of(MR).max(MR)),
        kc: KC_MAX.min(k.max(1)),
        nc: NC_MAX.min(n.next_multiple_of(NR).max(NR)),
    }
}

fn check_shapes<T>(m: usize, n: usize, k: usize, a: &[T], b: &[T], c: &[T]) -> Result<()> {
    let (mk, kn, mn) = match (m.checked_mul(k), k.checked_mul(n), m.checked_mul(n)) {
        (Some(mk), Some(kn), Some(mn)) => (mk, kn, mn),
        _ => {
            return Err(LinalgError::InvalidDimension {
                op: "gemm",
                detail: format!("dimension product overflows usize: m={m} n={n} k={k}"),
            })
        }
    };
    if a.len() != mk || b.len() != kn || c.len() != mn {
        return Err(LinalgError::InvalidDimension {
            op: "gemm",
            detail: format!(
                "slice lengths {}/{}/{} do not match m={m} n={n} k={k}",
                a.len(),
                b.len(),
                c.len()
            ),
        });
    }
    Ok(())
}

/// Packed, blocked `C = A · B` over row-major slices (`a` is `m × k`, `b`
/// is `k × n`, `c` is `m × n`, all with leading dimension equal to their
/// width). Overwrites `c`.
///
/// See the module docs for the blocking scheme and the bitwise contract;
/// [`gemm_reference`] is the semantic definition.
pub fn gemm<T: Scalar>(m: usize, n: usize, k: usize, a: &[T], b: &[T], c: &mut [T]) -> Result<()> {
    check_shapes(m, n, k, a, b, c)?;
    c.fill(T::ZERO);
    if m == 0 || n == 0 || k == 0 {
        return Ok(());
    }
    let plan = block_plan(m, n, k);
    let (bpack, boffsets, n_pc) = pack_all_b(n, k, b, plan);
    let work = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    parallel::for_chunks_mut(c, plan.mc * n, work, |_, offset, chunk| {
        let row0 = offset / n;
        let rows = chunk.len() / n;
        let mut apack: Vec<T> = Vec::new();
        for (jc_idx, jc0) in (0..n).step_by(plan.nc).enumerate() {
            let nc_eff = plan.nc.min(n - jc0);
            for (pc_idx, k0) in (0..k).step_by(plan.kc).enumerate() {
                let kc_eff = plan.kc.min(k - k0);
                pack_a(a, k, row0, rows, k0, kc_eff, &mut apack);
                let boff = boffsets[jc_idx * n_pc + pc_idx];
                let bblock = &bpack[boff..boff + kc_eff * nc_eff];
                let mut jr0 = 0;
                while jr0 < nc_eff {
                    let nr = NR.min(nc_eff - jr0);
                    let bpanel = &bblock[jr0 * kc_eff..(jr0 + nr) * kc_eff];
                    let mut ir0 = 0;
                    while ir0 < rows {
                        let mr = MR.min(rows - ir0);
                        let apanel = &apack[ir0 * kc_eff..(ir0 + mr) * kc_eff];
                        let ctile = &mut chunk[ir0 * n + jc0 + jr0..];
                        micro_kernel(kc_eff, apanel, bpanel, ctile, n, mr, nr);
                        ir0 += mr;
                    }
                    jr0 += nr;
                }
            }
        }
    });
    Ok(())
}

/// Packs every `kc × nc` block of B up front (one sequential pass over B —
/// a vanishing fraction of the `O(m·n·k)` compute) and returns the buffer
/// plus the start offset of each `(jc, pc)` block.
fn pack_all_b<T: Scalar>(
    n: usize,
    k: usize,
    b: &[T],
    plan: BlockPlan,
) -> (Vec<T>, Vec<usize>, usize) {
    let n_jc = n.div_ceil(plan.nc);
    let n_pc = k.div_ceil(plan.kc);
    let mut bpack: Vec<T> = Vec::with_capacity(k * n);
    let mut offsets = Vec::with_capacity(n_jc * n_pc);
    for jc0 in (0..n).step_by(plan.nc) {
        let nc_eff = plan.nc.min(n - jc0);
        for k0 in (0..k).step_by(plan.kc) {
            let kc_eff = plan.kc.min(k - k0);
            offsets.push(bpack.len());
            pack_b(b, n, k0, kc_eff, jc0, nc_eff, &mut bpack);
        }
    }
    (bpack, offsets, n_pc)
}

/// Rank-`kc` update of one `mr × nr` C tile from packed micro-panels.
///
/// `ap` is `kc × mr` (k outer, row inner), `bp` is `kc × nr` (k outer,
/// column inner), `c` starts at the tile's top-left element with row stride
/// `ldc`. The full [`MR`]×[`NR`] tile keeps its accumulators in registers
/// (loaded from and stored back to C, which is lossless); edge tiles
/// accumulate in place. Both paths apply the `k` terms in ascending order
/// with the same zero-skip, so the element-wise rounding sequence is
/// identical to [`gemm_reference`].
#[inline]
fn micro_kernel<T: Scalar>(
    kc: usize,
    ap: &[T],
    bp: &[T],
    c: &mut [T],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    if mr == MR && nr == NR {
        let mut acc = [[T::ZERO; NR]; MR];
        for (r, accr) in acc.iter_mut().enumerate() {
            accr.copy_from_slice(&c[r * ldc..r * ldc + NR]);
        }
        for kk in 0..kc {
            let ak = &ap[kk * MR..kk * MR + MR];
            let bk = &bp[kk * NR..kk * NR + NR];
            for (accr, &ar) in acc.iter_mut().zip(ak) {
                if ar == T::ZERO {
                    continue;
                }
                for (aj, &bj) in accr.iter_mut().zip(bk) {
                    *aj = *aj + ar * bj;
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            c[r * ldc..r * ldc + NR].copy_from_slice(accr);
        }
    } else {
        for kk in 0..kc {
            let ak = &ap[kk * mr..kk * mr + mr];
            let bk = &bp[kk * nr..kk * nr + nr];
            for (r, &ar) in ak.iter().enumerate() {
                if ar == T::ZERO {
                    continue;
                }
                let crow = &mut c[r * ldc..r * ldc + nr];
                for (cj, &bj) in crow.iter_mut().zip(bk) {
                    *cj = *cj + ar * bj;
                }
            }
        }
    }
}

/// Serial reference `C = A · B`: the classic i-k-j loop, skipping zero A
/// entries, each output element accumulating its `k` terms in ascending
/// order. This is the semantic *and bitwise* definition of [`gemm`] (and of
/// the historical row-tiled matmul kernel it replaced, which performed the
/// identical per-element rounding sequence).
pub fn gemm_reference<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    b: &[T],
    c: &mut [T],
) -> Result<()> {
    check_shapes(m, n, k, a, b, c)?;
    c.fill(T::ZERO);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == T::ZERO {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj = *cj + aik * bj;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill<T: Scalar>(len: usize, f: impl Fn(usize) -> T) -> Vec<T> {
        (0..len).map(f).collect()
    }

    fn check_f64(m: usize, n: usize, k: usize) {
        let a = fill(m * k, |i| ((i * 7 + 3) % 11) as f64 - 5.0);
        let b = fill(k * n, |i| ((i * 5 + 1) % 13) as f64 * 0.25 - 1.5);
        let mut fast = vec![0.0f64; m * n];
        let mut slow = vec![1.0f64; m * n];
        gemm(m, n, k, &a, &b, &mut fast).unwrap();
        gemm_reference(m, n, k, &a, &b, &mut slow).unwrap();
        assert!(
            fast.iter()
                .zip(&slow)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "gemm != reference at {m}x{n}x{k}"
        );
    }

    #[test]
    fn matches_reference_bitwise_across_shapes() {
        for &(m, n, k) in &[
            (0, 5, 3),
            (5, 0, 3),
            (5, 3, 0),
            (1, 1, 1),
            (4, 8, 16),
            (5, 9, 7),
            (65, 17, 3),
            (13, 300, 2),
            (67, 70, 300),
        ] {
            check_f64(m, n, k);
        }
    }

    #[test]
    fn f32_path_matches_reference_bitwise() {
        let (m, n, k) = (33, 21, 40);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 7 + 3) % 11) as f32 - 5.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 5 + 1) % 13) as f32 * 0.25)
            .collect();
        let mut fast = vec![0.0f32; m * n];
        let mut slow = vec![0.0f32; m * n];
        gemm::<f32>(m, n, k, &a, &b, &mut fast).unwrap();
        gemm_reference::<f32>(m, n, k, &a, &b, &mut slow).unwrap();
        assert!(fast
            .iter()
            .zip(&slow)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn zero_skip_preserves_signed_zero() {
        // A zero row must yield +0.0 outputs (skipped entirely), and a
        // -0.0 contribution must round identically in both kernels.
        let a = vec![0.0, -0.0, 2.0, -3.0];
        let b = vec![-0.0, 1.0, 0.5, -2.0];
        let mut fast = vec![0.0f64; 4];
        let mut slow = vec![0.0f64; 4];
        gemm(2, 2, 2, &a, &b, &mut fast).unwrap();
        gemm_reference(2, 2, 2, &a, &b, &mut slow).unwrap();
        assert!(fast
            .iter()
            .zip(&slow)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(fast[0].to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn rejects_mismatched_slices() {
        let mut c = vec![0.0; 4];
        assert!(gemm(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c).is_err());
        assert!(gemm_reference(2, 2, 2, &[0.0; 4], &[0.0; 5], &mut c).is_err());
    }

    #[test]
    fn block_plan_is_size_only_and_clamped() {
        let p = block_plan(1000, 1000, 1000);
        assert_eq!(
            p,
            BlockPlan {
                mc: 64,
                kc: 256,
                nc: 1000
            }
        );
        let tiny = block_plan(2, 3, 1);
        assert!(tiny.mc >= MR && tiny.nc >= NR && tiny.kc >= 1);
    }
}
