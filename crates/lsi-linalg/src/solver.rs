//! Resilient truncated-SVD driver: backend fallback with verified factors.
//!
//! Any single truncated-SVD backend can fail — Lanczos can stagnate inside
//! an iteration budget, a corrupted operator can poison the Krylov space
//! with NaNs, a randomized sketch can be unlucky on an adversarial
//! spectrum. [`solve_truncated_svd`] wraps the three backends
//! ([`lanczos`](crate::lanczos), [`randomized`](crate::randomized), dense
//! [`svd`](crate::svd::svd)) behind a [`SolvePlan`]: an ordered list of
//! attempts with escalating options, each guarded by an input-finiteness
//! probe *before* it runs and by post-hoc factor verification *after*.
//!
//! The contract is strict: the driver returns factors only if they pass
//! verification (finite entries, orthonormal live triplets, small operator
//! residuals, no stochastic energy inflation). Otherwise it returns
//! [`SolveError::Exhausted`] carrying a [`SolveReport`] that records, for
//! every attempt, the backend, its options, iterations performed, and the
//! exact failure cause — it never panics and never hands back unverified
//! garbage. Rank-deficient inputs are *not* an error: the factors come back
//! zero-padded and the report's `achieved_rank` documents the degradation.

use crate::error::LinalgError;
use crate::lanczos::{lanczos_svd_detailed, LanczosOptions};
use crate::operator::LinearOperator;
use crate::randomized::{randomized_svd, RandomizedSvdOptions};
use crate::rng::seeded;
use crate::svd::{svd, TruncatedSvd};
use crate::vector;

/// One truncated-SVD backend with its options.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendSpec {
    /// Golub–Kahan–Lanczos bidiagonalization ([`crate::lanczos`]).
    Lanczos(LanczosOptions),
    /// Randomized range finding ([`crate::randomized`]).
    Randomized(RandomizedSvdOptions),
    /// Dense Golub–Reinsch SVD of the materialized operator — the last
    /// resort: slowest, but with no convergence budget to exhaust.
    Dense,
}

impl BackendSpec {
    /// Short stable backend name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            BackendSpec::Lanczos(_) => "lanczos",
            BackendSpec::Randomized(_) => "randomized",
            BackendSpec::Dense => "dense",
        }
    }

    /// Human-readable option summary for reports.
    fn detail(&self) -> String {
        match self {
            BackendSpec::Lanczos(o) => {
                let steps = if o.max_steps == usize::MAX {
                    "full".to_string()
                } else {
                    o.max_steps.to_string()
                };
                format!("tol={:.1e} max_steps={steps} seed={:#x}", o.tol, o.seed)
            }
            BackendSpec::Randomized(o) => format!(
                "oversample={} power={} seed={:#x}",
                o.oversample, o.power_iterations, o.seed
            ),
            BackendSpec::Dense => "golub-reinsch".to_string(),
        }
    }
}

/// Thresholds for post-hoc factor verification.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyOptions {
    /// Max allowed deviation of the live triplets' Gram matrix from the
    /// identity, entrywise.
    pub orthonormality_tol: f64,
    /// Max allowed per-triplet operator residual `‖A vᵢ − σᵢ uᵢ‖` (and its
    /// transpose mate), relative to `σ₁`. Also bounds how large `‖A x‖` may
    /// be for unit probes when the factors claim `A = 0`.
    pub residual_tol: f64,
    /// Slack for the stochastic energy check: for unit probes `x`,
    /// `‖A_k x‖ ≤ ‖A x‖ + slack · σ₁` must hold (a spectral truncation can
    /// only lose energy; corrupted factors inflate it).
    pub energy_slack: f64,
    /// Number of stochastic probe vectors.
    pub probes: usize,
    /// Seed for probe vectors (and the finiteness guard).
    pub seed: u64,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            orthonormality_tol: 1e-6,
            residual_tol: 1e-6,
            energy_slack: 1e-6,
            probes: 4,
            seed: 0xfac7_0c8e,
        }
    }
}

/// An ordered list of backend attempts plus verification thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct SolvePlan {
    /// Backends to try, in order, until one yields verified factors.
    pub attempts: Vec<BackendSpec>,
    /// Verification thresholds applied to every attempt's factors.
    pub verify: VerifyOptions,
}

impl SolvePlan {
    /// A plan with exactly one attempt and default verification.
    pub fn single(spec: BackendSpec) -> Self {
        SolvePlan {
            attempts: vec![spec],
            verify: VerifyOptions::default(),
        }
    }

    /// The default resilient escalation chain starting from Lanczos with
    /// default options: retry Lanczos with an unlimited step budget and a
    /// reseeded start vector, then randomized with extra power iterations,
    /// then the dense last resort.
    pub fn resilient() -> Self {
        Self::resilient_from(BackendSpec::Lanczos(LanczosOptions::default()))
    }

    /// A resilient escalation chain whose first attempt is `primary`.
    ///
    /// The fallbacks escalate away from whatever the primary was: a Lanczos
    /// primary retries with a larger Krylov budget and fresh seed before
    /// switching families; a randomized primary adds power iterations and
    /// oversampling first. Every chain ends with the dense backend, which
    /// has no convergence budget to exhaust.
    pub fn resilient_from(primary: BackendSpec) -> Self {
        let mut attempts = vec![primary.clone()];
        match primary {
            BackendSpec::Lanczos(o) => {
                attempts.push(BackendSpec::Lanczos(LanczosOptions {
                    seed: o.seed ^ 0x9e37_79b9_7f4a_7c15,
                    tol: o.tol,
                    max_steps: usize::MAX,
                }));
                attempts.push(BackendSpec::Randomized(RandomizedSvdOptions {
                    power_iterations: 4,
                    ..RandomizedSvdOptions::default()
                }));
                attempts.push(BackendSpec::Dense);
            }
            BackendSpec::Randomized(o) => {
                attempts.push(BackendSpec::Randomized(RandomizedSvdOptions {
                    oversample: o.oversample + 8,
                    power_iterations: o.power_iterations + 2,
                    seed: o.seed ^ 0x9e37_79b9_7f4a_7c15,
                }));
                attempts.push(BackendSpec::Lanczos(LanczosOptions::default()));
                attempts.push(BackendSpec::Dense);
            }
            BackendSpec::Dense => {}
        }
        SolvePlan {
            attempts,
            verify: VerifyOptions::default(),
        }
    }
}

/// Why factor verification rejected an attempt's output.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyFailure {
    /// A factor entry or singular value is NaN or infinite.
    NonFiniteFactors,
    /// Singular values are negative or not descending.
    MalformedSpectrum,
    /// The live triplets' Gram matrix strayed from the identity.
    Orthonormality {
        /// Worst entrywise deviation observed.
        residual: f64,
    },
    /// A live triplet fails `A vᵢ ≈ σᵢ uᵢ` (or the transpose relation).
    TripletResidual {
        /// Index of the offending triplet.
        index: usize,
        /// Residual norm relative to `σ₁`.
        residual: f64,
    },
    /// The factors claim a zero operator but probes found signal.
    ZeroFactorsButOperatorActs {
        /// `‖A x‖` observed for a unit probe.
        norm: f64,
    },
    /// `‖A_k x‖` exceeded `‖A x‖` beyond slack for a probe — the truncation
    /// gained energy, impossible for genuine factors.
    EnergyInflation {
        /// Probe index that tripped the check.
        probe: usize,
        /// Excess `‖A_k x‖ − ‖A x‖` relative to `σ₁`.
        excess: f64,
    },
}

impl std::fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyFailure::NonFiniteFactors => write!(f, "non-finite factor entries"),
            VerifyFailure::MalformedSpectrum => {
                write!(f, "singular values negative or out of order")
            }
            VerifyFailure::Orthonormality { residual } => {
                write!(f, "orthonormality residual {residual:.3e}")
            }
            VerifyFailure::TripletResidual { index, residual } => {
                write!(f, "triplet {index} residual {residual:.3e}")
            }
            VerifyFailure::ZeroFactorsButOperatorActs { norm } => {
                write!(f, "zero factors but ‖Ax‖ = {norm:.3e} on a probe")
            }
            VerifyFailure::EnergyInflation { probe, excess } => {
                write!(f, "probe {probe} energy inflated by {excess:.3e}·σ₁")
            }
        }
    }
}

/// Outcome of one backend attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// The backend produced factors and they passed verification.
    Verified {
        /// Worst Gram-matrix deviation of the live triplets.
        orthonormality: f64,
        /// Worst per-triplet operator residual relative to `σ₁`.
        max_residual: f64,
    },
    /// The pre-flight probe found NaN/∞ in the operator's products; the
    /// backend was never run.
    InputNotFinite,
    /// The backend itself returned an error.
    BackendError(LinalgError),
    /// The backend returned factors that failed verification; they were
    /// discarded.
    VerificationFailed(VerifyFailure),
}

impl AttemptOutcome {
    /// True for [`AttemptOutcome::Verified`].
    pub fn is_success(&self) -> bool {
        matches!(self, AttemptOutcome::Verified { .. })
    }
}

/// What happened during one entry of a [`SolvePlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// Backend name (`"lanczos"`, `"randomized"`, `"dense"`).
    pub backend: &'static str,
    /// Option summary (tolerances, budgets, seeds).
    pub detail: String,
    /// Iterations the backend performed, where meaningful (Lanczos steps,
    /// randomized power iterations; `None` for dense).
    pub iterations: Option<usize>,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
}

/// Full record of a [`solve_truncated_svd`] run: every attempt, in order,
/// plus what the winning factors look like.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// The rank the caller asked for.
    pub requested_rank: usize,
    /// Number of live (σ > 0) triplets in the returned factors; less than
    /// `requested_rank` exactly when the input is rank-deficient.
    pub achieved_rank: usize,
    /// Index into `attempts` of the verified attempt, if any.
    pub succeeded: Option<usize>,
    /// One record per attempt actually made (fallback stops at success).
    pub attempts: Vec<AttemptRecord>,
}

impl SolveReport {
    /// True when the factors carry fewer live triplets than requested —
    /// the documented outcome for rank-deficient inputs.
    pub fn degraded(&self) -> bool {
        self.succeeded.is_some() && self.achieved_rank < self.requested_rank
    }

    /// True when a later-than-first attempt won (at least one fallback).
    pub fn fell_back(&self) -> bool {
        self.succeeded.is_some_and(|i| i > 0)
    }

    /// One line per attempt, for logs and the CLI.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, a) in self.attempts.iter().enumerate() {
            let status = match &a.outcome {
                AttemptOutcome::Verified {
                    orthonormality,
                    max_residual,
                } => format!("ok (orth {orthonormality:.1e}, resid {max_residual:.1e})"),
                AttemptOutcome::InputNotFinite => "input not finite".to_string(),
                AttemptOutcome::BackendError(e) => format!("backend error: {e}"),
                AttemptOutcome::VerificationFailed(v) => format!("verification failed: {v}"),
            };
            let iters = a
                .iterations
                .map(|n| format!(" [{n} iters]"))
                .unwrap_or_default();
            out.push_str(&format!(
                "attempt {}: {} ({}){} -> {}\n",
                i + 1,
                a.backend,
                a.detail,
                iters,
                status
            ));
        }
        out.push_str(&format!(
            "rank: achieved {}/{}{}\n",
            self.achieved_rank,
            self.requested_rank,
            if self.degraded() { " (degraded)" } else { "" }
        ));
        out
    }
}

/// Why [`solve_truncated_svd`] returned no factors.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The request was malformed (zero/oversized rank, empty operator);
    /// no attempt was made.
    Invalid(LinalgError),
    /// Every attempt in the plan failed; the report records each cause.
    Exhausted(SolveReport),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Invalid(e) => write!(f, "invalid solve request: {e}"),
            SolveError::Exhausted(report) => write!(
                f,
                "all {} solver attempts failed:\n{}",
                report.attempts.len(),
                report.summary()
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// Verified factors plus the report of how they were obtained.
#[derive(Debug, Clone)]
pub struct SvdSolve {
    /// The verified truncated factors (zero-padded when rank-deficient).
    pub factors: TruncatedSvd,
    /// Per-attempt record.
    pub report: SolveReport,
}

/// Runs `plan` against `a` until one backend yields factors that pass
/// verification.
///
/// Returns the verified factors and a [`SolveReport`]; on malformed
/// requests returns [`SolveError::Invalid`] without attempting anything,
/// and when every attempt fails returns [`SolveError::Exhausted`] with the
/// per-attempt causes. This function never panics on finite or non-finite
/// input and never returns unverified factors.
///
/// # Examples
///
/// ```
/// use lsi_linalg::solver::{solve_truncated_svd, SolvePlan};
/// use lsi_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
/// let s = solve_truncated_svd(&a, 2, &SolvePlan::resilient()).unwrap();
/// assert!((s.factors.singular_values[0] - 4.0).abs() < 1e-9);
/// assert_eq!(s.report.achieved_rank, 2);
/// ```
pub fn solve_truncated_svd<Op: LinearOperator + ?Sized>(
    a: &Op,
    k: usize,
    plan: &SolvePlan,
) -> Result<SvdSolve, SolveError> {
    let (m, n) = (a.nrows(), a.ncols());
    let p = m.min(n);
    if k == 0 || k > p {
        return Err(SolveError::Invalid(LinalgError::InvalidDimension {
            op: "solve_truncated_svd",
            detail: format!("need 1 <= k <= min(m, n) = {p}, got k = {k}"),
        }));
    }
    if plan.attempts.is_empty() {
        return Err(SolveError::Invalid(LinalgError::InvalidDimension {
            op: "solve_truncated_svd",
            detail: "empty solve plan".to_string(),
        }));
    }

    let mut records = Vec::with_capacity(plan.attempts.len());
    for (i, spec) in plan.attempts.iter().enumerate() {
        let mut record = AttemptRecord {
            backend: spec.name(),
            detail: spec.detail(),
            iterations: None,
            outcome: AttemptOutcome::InputNotFinite,
        };

        // Pre-flight: probe the operator with one unit vector per side and
        // refuse to run the backend on NaN/∞ products. Re-probed on every
        // attempt because a transient fault may have cleared.
        match operator_products_finite(a, plan.verify.seed ^ (i as u64)) {
            Ok(true) => {}
            Ok(false) => {
                records.push(record);
                continue;
            }
            Err(e) => {
                record.outcome = AttemptOutcome::BackendError(e);
                records.push(record);
                continue;
            }
        }

        let produced = match spec {
            BackendSpec::Lanczos(opts) => lanczos_svd_detailed(a, k, opts).map(|(f, steps)| {
                record.iterations = Some(steps);
                f
            }),
            BackendSpec::Randomized(opts) => randomized_svd(a, k, opts).inspect(|_| {
                record.iterations = Some(opts.power_iterations);
            }),
            BackendSpec::Dense => a
                .to_dense()
                .and_then(|d| svd(&d))
                .and_then(|f| f.truncate(k.min(f.len()))),
        };

        let factors = match produced {
            Ok(f) => f,
            Err(e) => {
                record.outcome = AttemptOutcome::BackendError(e);
                records.push(record);
                continue;
            }
        };

        match verify_factors(a, &factors, &plan.verify) {
            Ok(stats) => {
                record.outcome = AttemptOutcome::Verified {
                    orthonormality: stats.orthonormality,
                    max_residual: stats.max_residual,
                };
                records.push(record);
                let achieved = live_count(&factors);
                return Ok(SvdSolve {
                    factors,
                    report: SolveReport {
                        requested_rank: k,
                        achieved_rank: achieved,
                        succeeded: Some(i),
                        attempts: records,
                    },
                });
            }
            Err(v) => {
                record.outcome = AttemptOutcome::VerificationFailed(v);
                records.push(record);
            }
        }
    }

    Err(SolveError::Exhausted(SolveReport {
        requested_rank: k,
        achieved_rank: 0,
        succeeded: None,
        attempts: records,
    }))
}

/// Number of triplets with a strictly positive singular value.
fn live_count(f: &TruncatedSvd) -> usize {
    f.singular_values.iter().filter(|&&s| s > 0.0).count()
}

/// Sends one deterministic unit probe through each side of the operator and
/// checks the products are finite.
fn operator_products_finite<Op: LinearOperator + ?Sized>(a: &Op, seed: u64) -> crate::Result<bool> {
    let mut rng = seeded(seed);
    let mut x = vec![0.0; a.ncols()];
    crate::rng::fill_standard_normal(&mut rng, &mut x);
    vector::normalize(&mut x);
    let y = a.apply(&x)?;
    if y.iter().any(|v| !v.is_finite()) {
        return Ok(false);
    }
    let mut u = vec![0.0; a.nrows()];
    crate::rng::fill_standard_normal(&mut rng, &mut u);
    vector::normalize(&mut u);
    let t = a.apply_transpose(&u)?;
    Ok(t.iter().all(|v| v.is_finite()))
}

struct VerifyStats {
    orthonormality: f64,
    max_residual: f64,
}

/// Checks the candidate factors against the operator itself. Uses
/// `2 · live + 2 · probes` operator products.
fn verify_factors<Op: LinearOperator + ?Sized>(
    a: &Op,
    f: &TruncatedSvd,
    opts: &VerifyOptions,
) -> Result<VerifyStats, VerifyFailure> {
    // 1. Finite entries everywhere.
    let finite =
        f.singular_values.iter().all(|s| s.is_finite()) && f.u.is_finite() && f.vt.is_finite();
    if !finite {
        return Err(VerifyFailure::NonFiniteFactors);
    }

    // 2. Descending, nonnegative spectrum.
    if f.singular_values.iter().any(|&s| s < 0.0)
        || f.singular_values.windows(2).any(|w| w[0] < w[1])
    {
        return Err(VerifyFailure::MalformedSpectrum);
    }

    let live: Vec<usize> = (0..f.singular_values.len())
        .filter(|&i| f.singular_values[i] > 0.0)
        .collect();
    let sigma1 = f.singular_values.first().copied().unwrap_or(0.0);

    // 3. Orthonormality of the live triplets only: rank-deficient factors
    // legitimately carry zero-padded (non-orthonormal) trailing columns.
    let mut orth: f64 = 0.0;
    for (pa, &ia) in live.iter().enumerate() {
        for &ib in &live[pa..] {
            let want = if ia == ib { 1.0 } else { 0.0 };
            let du = vector::dot(&f.u.col(ia), &f.u.col(ib));
            let dv = vector::dot(f.vt.row(ia), f.vt.row(ib));
            orth = orth.max((du - want).abs()).max((dv - want).abs());
        }
    }
    if orth > opts.orthonormality_tol {
        return Err(VerifyFailure::Orthonormality { residual: orth });
    }

    // 4. Per-triplet operator residuals, relative to σ₁.
    let mut max_residual: f64 = 0.0;
    for &i in &live {
        let sigma = f.singular_values[i];
        let av = a
            .apply(f.vt.row(i))
            .map_err(|_| VerifyFailure::TripletResidual {
                index: i,
                residual: f64::INFINITY,
            })?;
        let ucol = f.u.col(i);
        let r1 = res_norm(&av, &ucol, sigma);
        let atu = a
            .apply_transpose(&ucol)
            .map_err(|_| VerifyFailure::TripletResidual {
                index: i,
                residual: f64::INFINITY,
            })?;
        let vrow = f.vt.row(i);
        let r2 = res_norm(&atu, vrow, sigma);
        let rel = r1.max(r2) / sigma1.max(f64::MIN_POSITIVE);
        max_residual = max_residual.max(rel);
        if !rel.is_finite() || rel > opts.residual_tol {
            return Err(VerifyFailure::TripletResidual {
                index: i,
                residual: rel,
            });
        }
    }

    // 5. Stochastic probes: `A_k` is a spectral truncation of `A`, so for
    // any x, ‖A_k x‖ ≤ ‖A x‖ — inflated energy means corrupted factors
    // (e.g. a magnitude spike that checks 1–4 happened to miss). The same
    // probes also catch all-zero factors for an operator that visibly acts.
    let mut rng = seeded(opts.seed);
    for probe in 0..opts.probes {
        let mut x = vec![0.0; a.ncols()];
        crate::rng::fill_standard_normal(&mut rng, &mut x);
        vector::normalize(&mut x);
        let ax = a.apply(&x).map_err(|_| VerifyFailure::EnergyInflation {
            probe,
            excess: f64::INFINITY,
        })?;
        let ax_norm = vector::norm(&ax);
        if !ax_norm.is_finite() {
            return Err(VerifyFailure::EnergyInflation {
                probe,
                excess: f64::INFINITY,
            });
        }
        if live.is_empty() {
            // Factors claim A = 0: the probe must agree (within residual
            // tolerance; the operator's scale is unknowable when σ₁ = 0, so
            // the bound is absolute).
            if ax_norm > opts.residual_tol {
                return Err(VerifyFailure::ZeroFactorsButOperatorActs { norm: ax_norm });
            }
            continue;
        }
        let akx_norm = truncation_apply_norm(f, &live, &x);
        let excess = (akx_norm - ax_norm) / sigma1.max(f64::MIN_POSITIVE);
        if !excess.is_finite() || excess > opts.energy_slack {
            return Err(VerifyFailure::EnergyInflation { probe, excess });
        }
    }

    Ok(VerifyStats {
        orthonormality: orth,
        max_residual,
    })
}

/// `‖y − σ z‖` for same-length `y`, `z`.
fn res_norm(y: &[f64], z: &[f64], sigma: f64) -> f64 {
    y.iter()
        .zip(z)
        .map(|(a, b)| {
            let d = a - sigma * b;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// `‖A_k x‖` computed from the factors: `‖Σ (σᵢ ⟨vᵢ, x⟩) uᵢ‖`, which by
/// live-triplet orthonormality (checked earlier) is `√Σ (σᵢ ⟨vᵢ, x⟩)²`.
fn truncation_apply_norm(f: &TruncatedSvd, live: &[usize], x: &[f64]) -> f64 {
    live.iter()
        .map(|&i| {
            let c = f.singular_values[i] * vector::dot(f.vt.row(i), x);
            c * c
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultPlan, FaultyOperator};
    use crate::norms::frobenius;
    use crate::rng::gaussian_matrix;
    use crate::Matrix;

    fn sample(seed: u64, m: usize, n: usize) -> Matrix {
        let mut rng = seeded(seed);
        gaussian_matrix(&mut rng, m, n)
    }

    #[test]
    fn clean_operator_succeeds_first_try() {
        let a = sample(1, 20, 14);
        let s = solve_truncated_svd(&a, 4, &SolvePlan::resilient()).unwrap();
        assert_eq!(s.report.succeeded, Some(0));
        assert!(!s.report.fell_back());
        assert_eq!(s.report.achieved_rank, 4);
        let dense = svd(&a).unwrap();
        for i in 0..4 {
            assert!((s.factors.singular_values[i] - dense.singular_values[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn starved_lanczos_falls_back_and_matches_dense() {
        let a = sample(2, 40, 30);
        // First attempt cannot converge in 3 steps; the chain must recover
        // and the recovered values must match the dense reference closely.
        let plan = SolvePlan::resilient_from(BackendSpec::Lanczos(LanczosOptions {
            max_steps: 3,
            tol: 1e-12,
            ..LanczosOptions::default()
        }));
        let s = solve_truncated_svd(&a, 5, &plan).unwrap();
        assert!(s.report.fell_back(), "report: {}", s.report.summary());
        let first = &s.report.attempts[0];
        assert!(
            matches!(
                first.outcome,
                AttemptOutcome::BackendError(LinalgError::NoConvergence { .. })
            ),
            "first attempt: {:?}",
            first.outcome
        );
        let dense = svd(&a).unwrap();
        for i in 0..5 {
            let rel = (s.factors.singular_values[i] - dense.singular_values[i]).abs()
                / dense.singular_values[0];
            assert!(rel < 1e-6, "σ_{i} relative error {rel}");
        }
    }

    #[test]
    fn transient_nan_fault_is_ridden_out() {
        let a = sample(3, 25, 18);
        // NaNs on products 4..8: attempt 1's guard (products 0–1) passes,
        // its Lanczos run gets poisoned and its factors rejected, and by
        // the time attempt 2 probes, the window has closed — the fallback
        // runs on a clean operator.
        let plan_faults =
            FaultPlan::new(11).with_fault(FaultKind::NanInjection { probability: 0.3 }, 4, 8);
        let faulty = FaultyOperator::new(&a, plan_faults);
        let s = solve_truncated_svd(&faulty, 3, &SolvePlan::resilient()).unwrap();
        let dense = svd(&a).unwrap();
        for i in 0..3 {
            let rel = (s.factors.singular_values[i] - dense.singular_values[i]).abs()
                / dense.singular_values[0];
            assert!(rel < 1e-6, "σ_{i} relative error {rel}");
        }
    }

    #[test]
    fn persistent_nan_fault_exhausts_with_typed_causes() {
        let a = sample(4, 15, 12);
        let plan_faults = FaultPlan::new(13).with_fault(
            FaultKind::NanInjection { probability: 0.5 },
            0,
            usize::MAX,
        );
        let faulty = FaultyOperator::new(&a, plan_faults);
        match solve_truncated_svd(&faulty, 3, &SolvePlan::resilient()) {
            Err(SolveError::Exhausted(report)) => {
                assert_eq!(report.attempts.len(), 4);
                assert!(report
                    .attempts
                    .iter()
                    .all(|r| matches!(r.outcome, AttemptOutcome::InputNotFinite)));
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn rank_deficient_input_reports_degraded() {
        let mut rng = seeded(5);
        let b = gaussian_matrix(&mut rng, 12, 2);
        let c = gaussian_matrix(&mut rng, 2, 10);
        let a = b.matmul(&c).unwrap();
        let s = solve_truncated_svd(&a, 5, &SolvePlan::resilient()).unwrap();
        assert_eq!(s.report.achieved_rank, 2);
        assert!(s.report.degraded());
        let rec = s.factors.reconstruct().unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-8 * frobenius(&a).max(1.0));
    }

    #[test]
    fn zero_operator_succeeds_with_zero_rank() {
        let a = Matrix::zeros(8, 6);
        let s = solve_truncated_svd(&a, 3, &SolvePlan::resilient()).unwrap();
        assert_eq!(s.report.achieved_rank, 0);
        assert!(s.report.degraded());
        assert!(s.factors.singular_values.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn invalid_rank_is_rejected_before_any_attempt() {
        let a = Matrix::zeros(5, 4);
        for k in [0, 5] {
            match solve_truncated_svd(&a, k, &SolvePlan::resilient()) {
                Err(SolveError::Invalid(_)) => {}
                other => panic!("k={k}: expected Invalid, got {other:?}"),
            }
        }
    }

    #[test]
    fn dense_single_plan_works() {
        let a = sample(6, 10, 8);
        let s = solve_truncated_svd(&a, 3, &SolvePlan::single(BackendSpec::Dense)).unwrap();
        assert_eq!(s.report.attempts.len(), 1);
        assert_eq!(s.report.attempts[0].backend, "dense");
        assert!(s.report.attempts[0].outcome.is_success());
    }

    #[test]
    fn verification_rejects_spiked_factors() {
        // Hand-corrupt verified factors and check verify_factors sees it.
        let a = sample(7, 12, 9);
        let s = solve_truncated_svd(&a, 3, &SolvePlan::resilient()).unwrap();
        let mut bad = s.factors.clone();
        bad.singular_values[0] *= 1e6;
        assert!(matches!(
            verify_factors(&a, &bad, &VerifyOptions::default()),
            Err(VerifyFailure::TripletResidual { .. })
        ));
        let mut nan = s.factors.clone();
        nan.u[(0, 0)] = f64::NAN;
        assert!(matches!(
            verify_factors(&a, &nan, &VerifyOptions::default()),
            Err(VerifyFailure::NonFiniteFactors)
        ));
        let mut unsorted = s.factors;
        unsorted.singular_values.reverse();
        assert!(matches!(
            verify_factors(&a, &unsorted, &VerifyOptions::default()),
            Err(VerifyFailure::MalformedSpectrum)
        ));
    }

    #[test]
    fn zero_factors_for_acting_operator_are_rejected() {
        let a = sample(8, 10, 7);
        let zero = TruncatedSvd {
            u: Matrix::zeros(10, 2),
            singular_values: vec![0.0, 0.0],
            vt: Matrix::zeros(2, 7),
        };
        assert!(matches!(
            verify_factors(&a, &zero, &VerifyOptions::default()),
            Err(VerifyFailure::ZeroFactorsButOperatorActs { .. })
        ));
    }

    #[test]
    fn report_summary_mentions_every_attempt() {
        let a = sample(9, 18, 14);
        let plan = SolvePlan::resilient_from(BackendSpec::Lanczos(LanczosOptions {
            max_steps: 2,
            tol: 1e-13,
            ..LanczosOptions::default()
        }));
        let s = solve_truncated_svd(&a, 4, &plan).unwrap();
        let text = s.report.summary();
        assert!(text.contains("attempt 1: lanczos"));
        assert!(text.contains("attempt 2: lanczos"));
        assert!(text.contains("rank: achieved 4/4"));
    }
}
