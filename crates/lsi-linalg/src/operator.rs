//! Abstract linear operators.
//!
//! Lanczos, randomized SVD, and the power iteration only need `y = A x` and
//! `y = Aᵀ x`. Abstracting over that lets them run on a dense [`Matrix`],
//! a [`CsrMatrix`](crate::CsrMatrix) term–document matrix, or any composite
//! (e.g. a random projection applied on the fly) without densifying.

use crate::dense::Matrix;
use crate::Result;

/// Anything that can act as a (real) linear map and its transpose.
pub trait LinearOperator {
    /// Number of rows of the operator.
    fn nrows(&self) -> usize;

    /// Number of columns of the operator.
    fn ncols(&self) -> usize;

    /// `A x`; `x.len()` must equal `ncols()`.
    fn apply(&self, x: &[f64]) -> Result<Vec<f64>>;

    /// `Aᵀ x`; `x.len()` must equal `nrows()`.
    fn apply_transpose(&self, x: &[f64]) -> Result<Vec<f64>>;

    /// `A x` written into `out` (`out.len()` must equal `nrows()`).
    ///
    /// The default delegates to [`apply`](Self::apply) and copies; concrete
    /// matrix types override it with an allocation-free kernel so iterative
    /// solvers can reuse scratch buffers. Overrides must produce bitwise
    /// the same values as `apply`.
    fn apply_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        let y = self.apply(x)?;
        if out.len() != y.len() {
            return Err(crate::LinalgError::ShapeMismatch {
                op: "apply_into",
                left: (self.nrows(), self.ncols()),
                right: (out.len(), 1),
            });
        }
        out.copy_from_slice(&y);
        Ok(())
    }

    /// `Aᵀ x` written into `out` (`out.len()` must equal `ncols()`); see
    /// [`apply_into`](Self::apply_into).
    fn apply_transpose_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        let y = self.apply_transpose(x)?;
        if out.len() != y.len() {
            return Err(crate::LinalgError::ShapeMismatch {
                op: "apply_transpose_into",
                left: (self.nrows(), self.ncols()),
                right: (out.len(), 1),
            });
        }
        out.copy_from_slice(&y);
        Ok(())
    }

    /// Materializes the operator as a dense matrix by applying it to the
    /// standard basis. Intended for tests and small operators.
    fn to_dense(&self) -> Result<Matrix> {
        let (m, n) = (self.nrows(), self.ncols());
        let mut out = Matrix::zeros(m, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.apply(&e)?;
            out.set_col(j, &col);
            e[j] = 0.0;
        }
        Ok(out)
    }
}

impl LinearOperator for Matrix {
    fn nrows(&self) -> usize {
        Matrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        Matrix::ncols(self)
    }

    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.matvec(x)
    }

    fn apply_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.matvec_transpose(x)
    }

    fn apply_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        self.matvec_into(x, out)
    }

    fn apply_transpose_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        self.matvec_transpose_into(x, out)
    }

    fn to_dense(&self) -> Result<Matrix> {
        Ok(self.clone())
    }
}

/// The composition `L R` of two operators, applied lazily.
///
/// Used by the two-step pipeline of Section 5, where the projected matrix
/// `B = √(n/l) Rᵀ A` is a product that never needs to be stored densely when
/// only matrix–vector products are required.
pub struct ProductOperator<'a, L: LinearOperator, R: LinearOperator> {
    left: &'a L,
    right: &'a R,
}

impl<'a, L: LinearOperator, R: LinearOperator> ProductOperator<'a, L, R> {
    /// Composes `left * right`; fails if inner dimensions disagree.
    pub fn new(left: &'a L, right: &'a R) -> Result<Self> {
        if left.ncols() != right.nrows() {
            return Err(crate::LinalgError::ShapeMismatch {
                op: "ProductOperator::new",
                left: (left.nrows(), left.ncols()),
                right: (right.nrows(), right.ncols()),
            });
        }
        Ok(ProductOperator { left, right })
    }
}

impl<L: LinearOperator, R: LinearOperator> LinearOperator for ProductOperator<'_, L, R> {
    fn nrows(&self) -> usize {
        self.left.nrows()
    }

    fn ncols(&self) -> usize {
        self.right.ncols()
    }

    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        let y = self.right.apply(x)?;
        self.left.apply(&y)
    }

    fn apply_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        let y = self.left.apply_transpose(x)?;
        self.right.apply_transpose(&y)
    }
}

/// An operator scaled by a constant: `alpha * A`.
pub struct ScaledOperator<'a, A: LinearOperator> {
    inner: &'a A,
    alpha: f64,
}

impl<'a, A: LinearOperator> ScaledOperator<'a, A> {
    /// Wraps `inner`, scaling every product by `alpha`.
    pub fn new(inner: &'a A, alpha: f64) -> Self {
        ScaledOperator { inner, alpha }
    }
}

impl<A: LinearOperator> LinearOperator for ScaledOperator<'_, A> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = self.inner.apply(x)?;
        crate::vector::scale(self.alpha, &mut y);
        Ok(y)
    }

    fn apply_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = self.inner.apply_transpose(x)?;
        crate::vector::scale(self.alpha, &mut y);
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_operator_matches_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let x = vec![1.0, -1.0];
        assert_eq!(
            LinearOperator::apply(&a, &x).unwrap(),
            a.matvec(&x).unwrap()
        );
        let y = vec![1.0, 0.0, -1.0];
        assert_eq!(
            LinearOperator::apply_transpose(&a, &y).unwrap(),
            a.matvec_transpose(&y).unwrap()
        );
    }

    #[test]
    fn to_dense_reconstructs() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let d = LinearOperator::to_dense(&a).unwrap();
        assert_eq!(d.max_abs_diff(&a), Some(0.0));
    }

    #[test]
    fn product_operator_matches_matmul() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(2, 4, |i, j| (i * 4 + j) as f64 * 0.5);
        let p = ProductOperator::new(&a, &b).unwrap();
        let dense = p.to_dense().unwrap();
        let expect = a.matmul(&b).unwrap();
        assert!(dense.max_abs_diff(&expect).unwrap() < 1e-13);
        // Transpose product: (AB)ᵀ x = Bᵀ Aᵀ x.
        let x = vec![1.0, 2.0, 3.0];
        let got = p.apply_transpose(&x).unwrap();
        let want = expect.matvec_transpose(&x).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-13);
        }
    }

    #[test]
    fn product_operator_rejects_mismatch() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(3, 4);
        assert!(ProductOperator::new(&a, &b).is_err());
    }

    #[test]
    fn scaled_operator_scales_both_directions() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j + 1) as f64);
        let s = ScaledOperator::new(&a, 2.0);
        let x = vec![1.0, 1.0, 1.0];
        let got = s.apply(&x).unwrap();
        let base = a.matvec(&x).unwrap();
        for (g, b) in got.iter().zip(&base) {
            assert!((g - 2.0 * b).abs() < 1e-14);
        }
        let y = vec![1.0, -1.0];
        let got_t = s.apply_transpose(&y).unwrap();
        let base_t = a.matvec_transpose(&y).unwrap();
        for (g, b) in got_t.iter().zip(&base_t) {
            assert!((g - 2.0 * b).abs() < 1e-14);
        }
    }
}
