//! Householder QR factorization.
//!
//! Used to orthonormalize Gaussian matrices into random subspace bases
//! (Section 5's projection matrix `R`), as the range-finder step of the
//! randomized SVD, and by tests as an independent orthogonality oracle.

use crate::dense::Matrix;
use crate::error::LinalgError;
use crate::vector;
use crate::Result;

/// Thin QR of a tall (or square) matrix `A` (`m × n`, `m ≥ n`):
/// `A = Q R` with `Q` `m × n` column-orthonormal and `R` `n × n` upper
/// triangular with nonnegative diagonal.
///
/// Rank-deficient input is allowed; the corresponding columns of `Q` complete
/// an orthonormal basis (the factorization still satisfies `A = QR`).
pub fn qr_thin(a: &Matrix) -> Result<(Matrix, Matrix)> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::InvalidDimension {
            op: "qr_thin",
            detail: format!("need m >= n, got {m}x{n}"),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NotFinite { op: "qr_thin" });
    }

    // Work on a copy; `work` becomes R in its upper triangle while the
    // Householder vectors are kept separately (unit leading entry).
    let mut work = a.clone();
    let mut reflectors: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n); // (v, beta)

    for k in 0..n {
        // Build the Householder vector for column k, rows k..m (scaled
        // against over/underflow by the shared reflector helper).
        let x: Vec<f64> = (k..m).map(|i| work[(i, k)]).collect();
        let (v, beta) = vector::householder_reflector(&x);

        if beta != 0.0 {
            // Apply H = I - beta v vᵀ to the trailing block work[k.., k..].
            for j in k..n {
                let mut dot = 0.0;
                for (idx, vi) in v.iter().enumerate() {
                    dot += vi * work[(k + idx, j)];
                }
                let s = beta * dot;
                for (idx, vi) in v.iter().enumerate() {
                    work[(k + idx, j)] -= s * vi;
                }
            }
        }
        reflectors.push((v, beta));
    }

    // Extract R (n×n upper triangle).
    let mut r = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r[(i, j)] = work[(i, j)];
        }
    }

    // Form thin Q by applying H_0 ... H_{n-1} (in reverse) to I_{m×n}.
    let mut q = Matrix::zeros(m, n);
    for j in 0..n {
        q[(j, j)] = 1.0;
    }
    for k in (0..n).rev() {
        let (v, beta) = &reflectors[k];
        if *beta == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut dot = 0.0;
            for (idx, vi) in v.iter().enumerate() {
                dot += vi * q[(k + idx, j)];
            }
            let s = beta * dot;
            for (idx, vi) in v.iter().enumerate() {
                q[(k + idx, j)] -= s * vi;
            }
        }
    }

    // Canonicalize: make R's diagonal nonnegative by flipping signs.
    for k in 0..n {
        if r[(k, k)] < 0.0 {
            for j in k..n {
                r[(k, j)] = -r[(k, j)];
            }
            for i in 0..m {
                q[(i, k)] = -q[(i, k)];
            }
        }
    }

    Ok((q, r))
}

/// Orthonormalizes the columns of `a` (returns the thin-QR `Q` factor).
pub fn orthonormalize_columns(a: &Matrix) -> Result<Matrix> {
    Ok(qr_thin(a)?.0)
}

/// Maximum deviation of `qᵀq` from the identity; a test/validation helper
/// exposed publicly because several crates assert orthonormality.
pub fn orthonormality_error(q: &Matrix) -> f64 {
    let n = q.ncols();
    let mut worst = 0.0f64;
    // Gram matrix via transpose_matmul keeps this O(mn²) and allocation-light.
    let gram = q
        .transpose_matmul(q)
        // lsi-lint: allow(E1-panic-policy, "invariant: Q^T Q is square by construction, shapes cannot disagree")
        .expect("orthonormality_error: shapes always agree");
    for i in 0..n {
        for j in 0..n {
            let expect = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((gram[(i, j)] - expect).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{gaussian_matrix, seeded};

    fn reconstruct(q: &Matrix, r: &Matrix) -> Matrix {
        q.matmul(r).unwrap()
    }

    #[test]
    fn qr_identity() {
        let a = Matrix::identity(4);
        let (q, r) = qr_thin(&a).unwrap();
        assert!(orthonormality_error(&q) < 1e-14);
        assert!(reconstruct(&q, &r).max_abs_diff(&a).unwrap() < 1e-14);
    }

    #[test]
    fn qr_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let (q, r) = qr_thin(&a).unwrap();
        assert!(orthonormality_error(&q) < 1e-13);
        assert!(reconstruct(&q, &r).max_abs_diff(&a).unwrap() < 1e-13);
        // R upper triangular with nonnegative diagonal.
        assert!(r[(1, 0)].abs() < 1e-14);
        assert!(r[(0, 0)] >= 0.0 && r[(1, 1)] >= 0.0);
    }

    #[test]
    fn qr_random_tall() {
        let mut rng = seeded(99);
        let a = gaussian_matrix(&mut rng, 30, 8);
        let (q, r) = qr_thin(&a).unwrap();
        assert!(orthonormality_error(&q) < 1e-12);
        assert!(reconstruct(&q, &r).max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn qr_rank_deficient_still_factors() {
        // Two identical columns.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let (q, r) = qr_thin(&a).unwrap();
        assert!(reconstruct(&q, &r).max_abs_diff(&a).unwrap() < 1e-12);
        // Second diagonal entry of R collapses to ~0.
        assert!(r[(1, 1)].abs() < 1e-12);
    }

    #[test]
    fn qr_zero_matrix() {
        let a = Matrix::zeros(5, 3);
        let (q, r) = qr_thin(&a).unwrap();
        assert!(reconstruct(&q, &r).max_abs_diff(&a).unwrap() < 1e-14);
        assert_eq!(q.shape(), (5, 3));
        assert_eq!(r.shape(), (3, 3));
    }

    #[test]
    fn qr_rejects_wide() {
        let a = Matrix::zeros(2, 5);
        assert!(matches!(
            qr_thin(&a),
            Err(LinalgError::InvalidDimension { .. })
        ));
    }

    #[test]
    fn qr_rejects_nan() {
        let mut a = Matrix::zeros(3, 2);
        a[(1, 1)] = f64::NAN;
        assert!(matches!(qr_thin(&a), Err(LinalgError::NotFinite { .. })));
    }

    #[test]
    fn orthonormalize_columns_is_q() {
        let mut rng = seeded(5);
        let a = gaussian_matrix(&mut rng, 12, 4);
        let q = orthonormalize_columns(&a).unwrap();
        assert!(orthonormality_error(&q) < 1e-12);
    }
}
