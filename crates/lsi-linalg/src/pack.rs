//! Panel packing for the blocked GEMM ([`crate::gemm`]).
//!
//! The packed layouts are the classic BLIS/GotoBLAS micro-panel formats:
//!
//! * **A panels** (`pack_a`): the `rows × kc` operand block is split into
//!   [`MR`]-row micro-panels; within a micro-panel, elements are stored
//!   column-by-column (`k` outer, row inner), so the micro-kernel reads one
//!   contiguous `mr`-vector of A per `k` step.
//! * **B panels** (`pack_b`): the `kc × cols` block is split into
//!   [`NR`]-column micro-panels stored row-by-row (`k` outer, column inner),
//!   so the micro-kernel reads one contiguous `nr`-vector of B per `k` step.
//!
//! Edge micro-panels (fewer than `MR` rows / `NR` columns) are packed
//! *unpadded* at their true width; the micro-kernel handles them with a
//! separate edge path. Packing copies values verbatim — it never reorders
//! the `k` dimension — so the accumulation order (and hence every output
//! bit) is decided solely by the micro-kernel loop, not by packing.
//!
//! All pack geometry depends only on the operand sizes, never on the thread
//! count (see `parallel` module docs for why that matters).

use crate::gemm::Scalar;

/// Micro-panel height (rows of A / C updated per micro-kernel call).
pub const MR: usize = 4;
/// Micro-panel width (columns of B / C updated per micro-kernel call).
pub const NR: usize = 8;

/// Packs the `rows × kc` block of `a` (row-major, leading dimension `lda`)
/// starting at `(row0, k0)` into `out` in MR-micro-panel format.
///
/// `out` is cleared first; its final length is exactly `rows * kc`.
pub fn pack_a<T: Scalar>(
    a: &[T],
    lda: usize,
    row0: usize,
    rows: usize,
    k0: usize,
    kc: usize,
    out: &mut Vec<T>,
) {
    out.clear();
    out.reserve(rows * kc);
    let mut ir = 0;
    while ir < rows {
        let mr = MR.min(rows - ir);
        for kk in 0..kc {
            let col = k0 + kk;
            for r in 0..mr {
                out.push(a[(row0 + ir + r) * lda + col]);
            }
        }
        ir += mr;
    }
}

/// Packs the `kc × cols` block of `b` (row-major, leading dimension `ldb`)
/// starting at `(k0, col0)` into `out` in NR-micro-panel format.
///
/// Appends to `out` (callers packing several blocks into one buffer track
/// offsets themselves); appends exactly `kc * cols` elements.
pub fn pack_b<T: Scalar>(
    b: &[T],
    ldb: usize,
    k0: usize,
    kc: usize,
    col0: usize,
    cols: usize,
    out: &mut Vec<T>,
) {
    out.reserve(kc * cols);
    let mut jr = 0;
    while jr < cols {
        let nr = NR.min(cols - jr);
        for kk in 0..kc {
            let row = (k0 + kk) * ldb + col0 + jr;
            out.extend_from_slice(&b[row..row + nr]);
        }
        jr += nr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_micro_panel_layout() {
        // 3x2 block of a 4x3 matrix, MR=4 so a single (edge) micro-panel.
        let a: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let mut out = Vec::new();
        pack_a(&a, 3, 1, 3, 1, 2, &mut out);
        // rows 1..4, cols 1..3, column-major within the micro-panel:
        assert_eq!(out, vec![4.0, 7.0, 10.0, 5.0, 8.0, 11.0]);
    }

    #[test]
    fn pack_a_splits_full_micro_panels() {
        // 5 rows => one full MR=4 panel then a 1-row edge panel.
        let a: Vec<f64> = (0..10).map(|x| x as f64).collect();
        let mut out = Vec::new();
        pack_a(&a, 2, 0, 5, 0, 2, &mut out);
        assert_eq!(out, vec![0.0, 2.0, 4.0, 6.0, 1.0, 3.0, 5.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn pack_b_micro_panel_layout() {
        // 2x9 block => one full NR=8 panel then a 1-col edge panel.
        let b: Vec<f64> = (0..18).map(|x| x as f64).collect();
        let mut out = Vec::new();
        pack_b(&b, 9, 0, 2, 0, 9, &mut out);
        let expect: Vec<f64> = (0..8)
            .map(|x| x as f64)
            .chain((9..17).map(|x| x as f64))
            .chain([8.0, 17.0])
            .collect();
        assert_eq!(out, expect);
    }
}
