//! Matrix norms.

use crate::dense::Matrix;
use crate::operator::LinearOperator;
use crate::vector;
use crate::Result;

/// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
pub fn frobenius(a: &Matrix) -> f64 {
    vector::norm(a.as_slice())
}

/// Squared Frobenius norm `Σ aᵢⱼ²` — the measure in Eckart–Young (Theorem 1)
/// and Theorem 5 of the paper.
pub fn frobenius_sq(a: &Matrix) -> f64 {
    vector::norm_sq(a.as_slice())
}

/// Maximum absolute column sum (operator 1-norm).
pub fn one_norm(a: &Matrix) -> f64 {
    let mut sums = vec![0.0; a.ncols()];
    for row in a.rows_iter() {
        for (j, &x) in row.iter().enumerate() {
            sums[j] += x.abs();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Maximum absolute row sum (operator ∞-norm).
pub fn inf_norm(a: &Matrix) -> f64 {
    a.rows_iter()
        .map(|row| row.iter().map(|x| x.abs()).sum())
        .fold(0.0, f64::max)
}

/// Spectral norm (largest singular value) estimated by power iteration on
/// `AᵀA`, accurate to roughly `tol` relative error.
///
/// Deterministic: the starting vector is the all-ones vector plus a small
/// index-dependent perturbation, which is almost never orthogonal to the top
/// singular vector in practice; the iteration cap guards the exception.
pub fn spectral_norm<Op: LinearOperator + ?Sized>(
    a: &Op,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    let n = a.ncols();
    if n == 0 || a.nrows() == 0 {
        return Ok(0.0);
    }
    // Deterministic restarts: if a start vector lands in A's null space the
    // iterate breaks down, but that only proves the norm is 0 along that
    // direction — try a differently-phased start before concluding σ = 0.
    let mut sigma = 0.0f64;
    for restart in 0..4u32 {
        let phase = f64::from(restart) * 0.7;
        let mut v: Vec<f64> = (0..n)
            .map(|i| 1.0 + 1e-3 * (i as f64 + 1.0 + phase).sin() + phase * (i as f64).cos())
            .collect();
        if vector::normalize(&mut v) == 0.0 {
            continue;
        }
        let mut broke_down = false;
        for _ in 0..max_iter {
            let av = a.apply(&v)?;
            let mut w = a.apply_transpose(&av)?;
            let new_sigma = vector::norm(&av);
            if vector::normalize(&mut w) == 0.0 {
                broke_down = true;
                break;
            }
            v = w;
            if (new_sigma - sigma).abs() <= tol * new_sigma.max(f64::MIN_POSITIVE) {
                return Ok(new_sigma);
            }
            sigma = new_sigma;
        }
        if !broke_down {
            return Ok(sigma);
        }
    }
    Ok(sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frobenius_known() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert!((frobenius(&a) - 5.0).abs() < 1e-15);
        assert!((frobenius_sq(&a) - 25.0).abs() < 1e-15);
    }

    #[test]
    fn one_and_inf_norms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]).unwrap();
        assert_eq!(one_norm(&a), 6.0); // column 1: |−2|+|4|
        assert_eq!(inf_norm(&a), 7.0); // row 1: |−3|+|4|
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let a = Matrix::from_diag(&[1.0, 5.0, 3.0]);
        let s = spectral_norm(&a, 1e-12, 1000).unwrap();
        assert!((s - 5.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn spectral_norm_zero_matrix() {
        let a = Matrix::zeros(3, 4);
        assert_eq!(spectral_norm(&a, 1e-12, 100).unwrap(), 0.0);
    }

    #[test]
    fn spectral_norm_empty() {
        let a = Matrix::zeros(0, 0);
        assert_eq!(spectral_norm(&a, 1e-12, 100).unwrap(), 0.0);
    }

    #[test]
    fn spectral_le_frobenius() {
        let a = Matrix::from_fn(5, 4, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let s = spectral_norm(&a, 1e-10, 2000).unwrap();
        assert!(s <= frobenius(&a) + 1e-9);
        assert!(s >= frobenius(&a) / (4f64).sqrt() - 1e-9);
    }
}
