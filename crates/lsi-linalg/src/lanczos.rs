//! Truncated SVD by Golub–Kahan–Lanczos bidiagonalization.
//!
//! This is the workspace's stand-in for SVDPACK's `las2`: it computes the
//! leading `k` singular triplets of any [`LinearOperator`] — in particular a
//! CSR term–document matrix — without densifying, at cost `O(s · matvec)`
//! for `s` a little over `k` Lanczos steps.
//!
//! Both Krylov bases are kept fully reorthogonalized (two classical
//! Gram–Schmidt passes per step, the "twice is enough" rule). For the corpus
//! sizes in this reproduction robustness is worth far more than the memory a
//! selective-reorthogonalization scheme would save.

use rand::Rng;

use crate::dense::Matrix;
use crate::error::LinalgError;
use crate::operator::LinearOperator;
use crate::parallel;
use crate::rng::seeded;
use crate::svd::{svd, TruncatedSvd};
use crate::vector;
use crate::Result;

/// Elements per chunk when combining Ritz vectors out of the Krylov basis.
const COMBINE_GRAIN: usize = 2048;

/// Options for [`lanczos_svd`].
#[derive(Debug, Clone, PartialEq)]
pub struct LanczosOptions {
    /// Seed for the random start vector.
    pub seed: u64,
    /// Relative residual tolerance for declaring a Ritz triplet converged.
    pub tol: f64,
    /// Hard cap on Lanczos steps (defaults to `min(m, n)` if larger).
    ///
    /// When the cap is *below* `min(m, n)` and the leading `k` Ritz triplets
    /// have not met [`tol`](Self::tol) by the time the cap is reached,
    /// [`lanczos_svd`] returns [`LinalgError::NoConvergence`] carrying the
    /// number of steps taken, rather than silently growing the Krylov space
    /// to the full dimension. A cap of `min(m, n)` (or more) never fails this
    /// way: the full Krylov space reproduces the SVD exactly.
    pub max_steps: usize,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            seed: 0x5eed_1a2c,
            tol: 1e-10,
            max_steps: usize::MAX,
        }
    }
}

/// State of the Golub–Kahan–Lanczos recurrence, grown incrementally.
struct GklState {
    us: Vec<Vec<f64>>,
    vs: Vec<Vec<f64>>,
    alphas: Vec<f64>,
    betas: Vec<f64>,
    /// Set when the recurrence found an invariant subspace (exact breakdown).
    exhausted: bool,
}

impl GklState {
    fn new<R: Rng>(n: usize, rng: &mut R) -> Self {
        let mut v0 = vec![0.0; n];
        crate::rng::fill_standard_normal(rng, &mut v0);
        vector::normalize(&mut v0);
        GklState {
            us: Vec::new(),
            vs: vec![v0],
            alphas: Vec::new(),
            betas: Vec::new(),
            exhausted: false,
        }
    }

    fn steps(&self) -> usize {
        self.alphas.len()
    }

    /// Runs the recurrence until `target` steps are done (or breakdown).
    fn advance<Op: LinearOperator + ?Sized>(&mut self, a: &Op, target: usize) -> Result<()> {
        while self.steps() < target && !self.exhausted {
            let j = self.steps();
            // p = A v_j − β_{j−1} u_{j−1}
            let mut p = a.apply(&self.vs[j])?;
            if j > 0 {
                vector::axpy(-self.betas[j - 1], &self.us[j - 1], &mut p);
            }
            reorthogonalize(&mut p, &self.us);
            let alpha = vector::normalize(&mut p);
            if alpha == 0.0 {
                self.exhausted = true;
                break;
            }
            self.us.push(p);
            self.alphas.push(alpha);

            // r = Aᵀ u_j − α_j v_j
            let mut r = a.apply_transpose(&self.us[j])?;
            vector::axpy(-alpha, &self.vs[j], &mut r);
            reorthogonalize(&mut r, &self.vs);
            let beta = vector::normalize(&mut r);
            if beta == 0.0 {
                self.exhausted = true;
                self.betas.push(0.0);
                break;
            }
            self.betas.push(beta);
            self.vs.push(r);
        }
        Ok(())
    }

    /// The s×s upper bidiagonal projected matrix.
    fn projected(&self) -> Matrix {
        let s = self.steps();
        let mut b = Matrix::zeros(s, s);
        for (i, &a) in self.alphas.iter().enumerate() {
            b[(i, i)] = a;
        }
        for i in 0..s.saturating_sub(1) {
            b[(i, i + 1)] = self.betas[i];
        }
        b
    }
}

/// Two classical Gram–Schmidt passes against an orthonormal set.
///
/// The inner products and updates go through the [`parallel`] kernels:
/// coefficients use the fixed-chunk ordered-reduction dot, updates the
/// element-parallel axpy — both bitwise identical to the serial kernels at
/// any thread count, so reorthogonalization (the dominant cost of full
/// reorthogonalization at large step counts) scales without perturbing the
/// recurrence.
fn reorthogonalize(x: &mut [f64], basis: &[Vec<f64>]) {
    for _ in 0..2 {
        for q in basis {
            let c = parallel::dot(x, q);
            parallel::axpy(-c, q, x);
        }
    }
}

/// `out = Σ_j coeff(j) · basis[j]`, element-parallel with fixed chunk
/// boundaries: within each output chunk the basis vectors are accumulated
/// in ascending `j`, matching the serial axpy loop bit for bit.
fn combine_basis(basis: &[Vec<f64>], coeff: impl Fn(usize) -> f64 + Sync, out: &mut [f64]) {
    let work = basis.len().saturating_mul(out.len()).saturating_mul(2);
    parallel::for_chunks_mut(out, COMBINE_GRAIN, work, |_, offset, chunk| {
        chunk.fill(0.0);
        for (j, q) in basis.iter().enumerate() {
            vector::axpy(coeff(j), &q[offset..offset + chunk.len()], chunk);
        }
    });
}

/// Leading-`k` truncated SVD of a linear operator by Lanczos bidiagonalization.
///
/// Requires `1 ≤ k ≤ min(m, n)`. The returned triplets satisfy the usual
/// contract of [`TruncatedSvd`]: descending nonnegative singular values with
/// column-orthonormal `u` and row-orthonormal `vt`. If the operator's rank
/// `r` is below `k`, the trailing `k − r` triplets have zero singular values
/// and zero vectors.
///
/// # Examples
///
/// ```
/// use lsi_linalg::lanczos::{lanczos_svd, LanczosOptions};
/// use lsi_linalg::CsrMatrix;
///
/// let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 3.0), (1, 1, 4.0)]).unwrap();
/// let f = lanczos_svd(&a, 2, &LanczosOptions::default()).unwrap();
/// assert!((f.singular_values[0] - 4.0).abs() < 1e-9);
/// assert!((f.singular_values[1] - 3.0).abs() < 1e-9);
/// ```
pub fn lanczos_svd<Op: LinearOperator + ?Sized>(
    a: &Op,
    k: usize,
    opts: &LanczosOptions,
) -> Result<TruncatedSvd> {
    lanczos_svd_detailed(a, k, opts).map(|(f, _)| f)
}

/// Like [`lanczos_svd`], additionally reporting the number of Lanczos steps
/// performed — the iteration count recorded by the resilient solve driver's
/// [`SolveReport`](crate::solver::SolveReport).
pub fn lanczos_svd_detailed<Op: LinearOperator + ?Sized>(
    a: &Op,
    k: usize,
    opts: &LanczosOptions,
) -> Result<(TruncatedSvd, usize)> {
    let (m, n) = (a.nrows(), a.ncols());
    let p = m.min(n);
    if k == 0 || k > p {
        return Err(LinalgError::InvalidDimension {
            op: "lanczos_svd",
            detail: format!("need 1 <= k <= min(m, n) = {p}, got k = {k}"),
        });
    }

    let mut rng = seeded(opts.seed);
    let mut state = GklState::new(n, &mut rng);
    let cap = p.min(opts.max_steps).max(k);

    // Grow the Krylov space until the top-k Ritz triplets converge.
    let mut target = (2 * k + 10).min(cap);
    let small = loop {
        state.advance(a, target)?;
        let b = state.projected();
        let f = svd(&b)?;
        let s = state.steps();
        if s == 0 {
            // Operator is zero (or start vector annihilated): all-zero SVD.
            break f;
        }
        let last_beta = state.betas.get(s - 1).copied().unwrap_or(0.0);
        let ritz_ok = (0..k.min(f.len())).all(|i| {
            let sigma = f.singular_values[i];
            // True GKL residual: ‖Aᵀũᵢ − σᵢṽᵢ‖ = β_s · |p_i[s−1]|,
            // the last entry of the *left* small singular vector.
            let resid = last_beta * f.u[(s - 1, i)].abs();
            resid <= opts.tol * sigma.max(f64::MIN_POSITIVE)
        });
        if (state.exhausted || ritz_ok) && f.len() >= k.min(s) {
            break f;
        }
        if s >= cap {
            if cap >= p {
                // Full Krylov space: the projected problem is the whole
                // problem, so the factors are exact regardless of the Ritz
                // residual estimate.
                break f;
            }
            // The caller's step budget ran out before the leading triplets
            // met tolerance: refuse to hand back unconverged factors.
            return Err(LinalgError::NoConvergence {
                op: "lanczos_svd",
                iterations: s,
            });
        }
        target = (target + target / 2 + 8).min(cap);
    };

    // Map the small factors back: U = U_s P_k, V = V_s Q_k.
    let s = state.steps();
    let avail = k.min(s);
    let mut u = Matrix::zeros(m, k);
    let mut vt = Matrix::zeros(k, n);
    let mut singular_values = vec![0.0; k];

    // Reused scratch for both mapped columns: the back-mapping loop used to
    // allocate two fresh vectors per triplet.
    let mut scratch = vec![0.0; m.max(n)];
    for i in 0..avail {
        singular_values[i] = small.singular_values[i];
        // u_i = Σ_j P[j, i] · us[j]
        let ucol = &mut scratch[..m];
        combine_basis(&state.us[..s], |j| small.u[(j, i)], ucol);
        u.set_col(i, ucol);
        // v_i = Σ_j Q[j, i] · vs[j]  (Q[j, i] = vt[i, j])
        let vcol = &mut scratch[..n];
        combine_basis(&state.vs[..s], |j| small.vt[(i, j)], vcol);
        for (col, &x) in vcol.iter().enumerate() {
            vt[(i, col)] = x;
        }
    }

    // Zero out numerically-null trailing triplets so rank-deficient inputs
    // return clean zero vectors rather than noise directions. The cutoff is
    // a small multiple of machine epsilon — tight enough to keep genuine
    // high-dynamic-range singular values.
    let null_cutoff = 100.0 * f64::EPSILON;
    let smax = singular_values[0].max(f64::MIN_POSITIVE);
    for i in 0..k {
        if singular_values[i] <= null_cutoff * smax {
            singular_values[i] = 0.0;
            u.set_col(i, &vec![0.0; m]);
            for col in 0..n {
                vt[(i, col)] = 0.0;
            }
        }
    }

    Ok((
        TruncatedSvd {
            u,
            singular_values,
            vt,
        },
        s,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::frobenius;
    use crate::qr::orthonormality_error;
    use crate::rng::gaussian_matrix;
    use crate::sparse::CsrMatrix;
    use crate::svd::svd;

    fn opts() -> LanczosOptions {
        LanczosOptions::default()
    }

    #[test]
    fn lanczos_matches_dense_svd_top_k() {
        let mut rng = seeded(123);
        let a = gaussian_matrix(&mut rng, 30, 20);
        let dense = svd(&a).unwrap();
        let lz = lanczos_svd(&a, 5, &opts()).unwrap();
        for i in 0..5 {
            assert!(
                (lz.singular_values[i] - dense.singular_values[i]).abs() < 1e-8,
                "σ_{i}: {} vs {}",
                lz.singular_values[i],
                dense.singular_values[i]
            );
        }
        assert!(orthonormality_error(&lz.u) < 1e-8);
        assert!(orthonormality_error(&lz.vt.transpose()) < 1e-8);
    }

    #[test]
    fn lanczos_subspace_matches_dense() {
        // Compare projectors U Uᵀ rather than U itself (signs/rotations of
        // degenerate blocks are arbitrary).
        let mut rng = seeded(7);
        let a = gaussian_matrix(&mut rng, 25, 12);
        let dense = svd(&a).unwrap().truncate(3).unwrap();
        let lz = lanczos_svd(&a, 3, &opts()).unwrap();
        let pd = dense.u.matmul(&dense.u.transpose()).unwrap();
        let pl = lz.u.matmul(&lz.u.transpose()).unwrap();
        assert!(pd.max_abs_diff(&pl).unwrap() < 1e-7);
    }

    #[test]
    fn lanczos_on_sparse_matches_dense_path() {
        let mut rng = seeded(55);
        let mut dense_m = gaussian_matrix(&mut rng, 40, 25);
        // Sparsify: keep ~20% of entries.
        dense_m.map_inplace(|x| if x.abs() > 1.2 { x } else { 0.0 });
        let sp = CsrMatrix::from_dense(&dense_m, 0.0);
        let via_sparse = lanczos_svd(&sp, 4, &opts()).unwrap();
        let via_dense = svd(&dense_m).unwrap();
        for i in 0..4 {
            assert!((via_sparse.singular_values[i] - via_dense.singular_values[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn lanczos_rank_deficient_pads_with_zeros() {
        // Rank-2 matrix, ask for 4 triplets.
        let mut rng = seeded(2);
        let b = gaussian_matrix(&mut rng, 10, 2);
        let c = gaussian_matrix(&mut rng, 2, 8);
        let a = b.matmul(&c).unwrap();
        let lz = lanczos_svd(&a, 4, &opts()).unwrap();
        assert!(lz.singular_values[0] > 0.0);
        assert!(lz.singular_values[1] > 0.0);
        assert_eq!(lz.singular_values[2], 0.0);
        assert_eq!(lz.singular_values[3], 0.0);
        // Reconstruction from the 2 live triplets matches A.
        let rec = lz.reconstruct().unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-8 * frobenius(&a).max(1.0));
    }

    #[test]
    fn lanczos_full_rank_equals_matrix() {
        let mut rng = seeded(3);
        let a = gaussian_matrix(&mut rng, 9, 6);
        let lz = lanczos_svd(&a, 6, &opts()).unwrap();
        let rec = lz.reconstruct().unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-8);
    }

    #[test]
    fn lanczos_rejects_bad_k() {
        let a = Matrix::zeros(5, 4);
        assert!(lanczos_svd(&a, 0, &opts()).is_err());
        assert!(lanczos_svd(&a, 5, &opts()).is_err());
    }

    #[test]
    fn lanczos_zero_matrix() {
        let a = Matrix::zeros(6, 5);
        let lz = lanczos_svd(&a, 2, &opts()).unwrap();
        assert!(lz.singular_values.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn lanczos_deterministic_given_seed() {
        let mut rng = seeded(8);
        let a = gaussian_matrix(&mut rng, 15, 10);
        let x = lanczos_svd(&a, 3, &opts()).unwrap();
        let y = lanczos_svd(&a, 3, &opts()).unwrap();
        assert_eq!(x.singular_values, y.singular_values);
        assert_eq!(x.u.max_abs_diff(&y.u), Some(0.0));
    }

    #[test]
    fn lanczos_max_steps_budget_reports_no_convergence() {
        // A flat spectrum with a tight tolerance cannot converge in a
        // handful of steps; the budget must surface as NoConvergence with
        // the steps actually taken, not as silently unconverged factors.
        let mut rng = seeded(17);
        let a = gaussian_matrix(&mut rng, 60, 50);
        let tight = LanczosOptions {
            tol: 1e-14,
            max_steps: 6,
            ..LanczosOptions::default()
        };
        match lanczos_svd(&a, 5, &tight) {
            Err(crate::LinalgError::NoConvergence { op, iterations }) => {
                assert_eq!(op, "lanczos_svd");
                assert!(iterations <= 6, "iterations {iterations}");
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn lanczos_max_steps_at_full_dimension_is_exact() {
        // A budget of min(m, n) spans the whole space, so even an
        // unreachable tolerance yields exact factors rather than an error.
        let mut rng = seeded(18);
        let a = gaussian_matrix(&mut rng, 12, 9);
        let opts = LanczosOptions {
            tol: 0.0,
            max_steps: 9,
            ..LanczosOptions::default()
        };
        let f = lanczos_svd(&a, 3, &opts).unwrap();
        let dense = svd(&a).unwrap();
        for i in 0..3 {
            assert!((f.singular_values[i] - dense.singular_values[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn lanczos_detailed_reports_steps() {
        let mut rng = seeded(19);
        let a = gaussian_matrix(&mut rng, 20, 15);
        let (f, steps) = lanczos_svd_detailed(&a, 3, &opts()).unwrap();
        assert!((3..=15).contains(&steps), "steps {steps}");
        assert!(f.singular_values[0] > 0.0);
    }

    #[test]
    fn lanczos_clustered_spectrum() {
        // Nearly-equal leading singular values stress convergence detection.
        let mut rng = seeded(91);
        let u = crate::rng::random_orthonormal(&mut rng, 20, 6).unwrap();
        let v = crate::rng::random_orthonormal(&mut rng, 15, 6).unwrap();
        let s = [10.0, 9.9999, 9.9998, 5.0, 1.0, 0.5];
        let mut svt = v.transpose();
        for (i, &si) in s.iter().enumerate() {
            for x in svt.row_mut(i) {
                *x *= si;
            }
        }
        let a = u.matmul(&svt).unwrap();
        let lz = lanczos_svd(&a, 3, &opts()).unwrap();
        for (i, (got, want)) in lz.singular_values.iter().zip(&s).enumerate().take(3) {
            assert!((got - want).abs() < 1e-6, "σ_{i}");
        }
    }
}
