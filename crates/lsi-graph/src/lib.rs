#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The graph-theoretic corpus model (Section 6, Theorem 6).
//!
//! "Suppose that documents are nodes in a graph and that weights on the
//! edges capture conceptual proximity… Then a topic is defined implicitly as
//! a subgraph with high conductance." Theorem 6: if the corpus consists of
//! `k` disjoint high-conductance subgraphs joined by edges of total weight
//! per vertex bounded by an ε fraction, rank-k spectral analysis discovers
//! the subgraphs.
//!
//! * [`graph`] — weighted undirected graphs and their (row-normalized)
//!   adjacency matrices.
//! * [`conductance`] — the paper's conductance `φ(S) = w(S, S̄) /
//!   min(|S|, |S̄|)` (exhaustive for small graphs, sweep-cut otherwise).
//! * [`planted`] — the planted-partition generator matching Theorem 6's
//!   hypothesis: dense blocks plus ε-bounded leakage.
//! * [`spectral`] — rank-k spectral embedding + clustering, and the
//!   adjusted Rand index to score recovery against the planted truth.

pub mod conductance;
pub mod doc_graph;
pub mod graph;
pub mod planted;
pub mod spectral;

pub use conductance::{conductance_of_set, cut_weight, min_conductance_exhaustive};
pub use doc_graph::{document_similarity_graph, label_leakage, SimilarityKind};
pub use graph::WeightedGraph;
pub use planted::{PlantedConfig, PlantedPartition};
pub use spectral::{adjusted_rand_index, kmeans, spectral_partition};
