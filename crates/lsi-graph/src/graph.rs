//! Weighted undirected graphs.

use lsi_linalg::Matrix;

/// An undirected graph with nonnegative edge weights, stored as per-vertex
/// adjacency lists (each edge appears in both endpoints' lists).
///
/// # Examples
///
/// ```
/// use lsi_graph::WeightedGraph;
///
/// let mut g = WeightedGraph::new(3);
/// g.add_edge(0, 1, 2.0);
/// g.add_edge(1, 2, 0.5);
/// assert_eq!(g.degree(1), 2.5);
/// assert_eq!(g.weight(1, 0), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    adj: Vec<Vec<(usize, f64)>>,
}

impl WeightedGraph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        WeightedGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds `weight` to the undirected edge `{u, v}`. Self-loops are
    /// allowed (weight counts once on the diagonal). Panics on out-of-range
    /// vertices or negative/non-finite weight.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) {
        assert!(u < self.len() && v < self.len(), "vertex out of range");
        assert!(
            weight.is_finite() && weight >= 0.0,
            "edge weight must be nonnegative and finite"
        );
        if weight == 0.0 {
            return;
        }
        add_to_list(&mut self.adj[u], v, weight);
        if u != v {
            add_to_list(&mut self.adj[v], u, weight);
        }
    }

    /// The neighbors of `u` as `(vertex, weight)` pairs.
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.adj[u]
    }

    /// Weight of edge `{u, v}` (0 if absent).
    pub fn weight(&self, u: usize, v: usize) -> f64 {
        self.adj[u]
            .iter()
            .find(|&&(w, _)| w == v)
            .map_or(0.0, |&(_, x)| x)
    }

    /// Weighted degree (sum of incident edge weights) of `u`.
    pub fn degree(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|&(_, w)| w).sum()
    }

    /// Total edge weight (each undirected edge counted once).
    pub fn total_weight(&self) -> f64 {
        let mut sum = 0.0;
        for (u, list) in self.adj.iter().enumerate() {
            for &(v, w) in list {
                if v >= u {
                    sum += w;
                }
            }
        }
        sum
    }

    /// Number of distinct edges (undirected, self-loops included).
    pub fn edge_count(&self) -> usize {
        let mut count = 0usize;
        for (u, list) in self.adj.iter().enumerate() {
            count += list.iter().filter(|&&(v, _)| v >= u).count();
        }
        count
    }

    /// The dense symmetric adjacency matrix.
    pub fn adjacency_matrix(&self) -> Matrix {
        let n = self.len();
        let mut a = Matrix::zeros(n, n);
        for (u, list) in self.adj.iter().enumerate() {
            for &(v, w) in list {
                a[(u, v)] = w;
            }
        }
        a
    }

    /// The row-normalized adjacency (each row sums to 1) — "the earlier
    /// normalization" used in Theorem 6's proof. Isolated vertices keep an
    /// all-zero row.
    pub fn row_normalized_adjacency(&self) -> Matrix {
        let mut a = self.adjacency_matrix();
        for u in 0..self.len() {
            let d = self.degree(u);
            if d > 0.0 {
                for x in a.row_mut(u) {
                    *x /= d;
                }
            }
        }
        a
    }

    /// The symmetric normalization `D^{-1/2} A D^{-1/2}` whose spectrum is
    /// real — the matrix the spectral partitioner actually factors (it has
    /// the same invariant-subspace structure as the row-stochastic form).
    pub fn symmetric_normalized_adjacency(&self) -> Matrix {
        let n = self.len();
        let inv_sqrt: Vec<f64> = (0..n)
            .map(|u| {
                let d = self.degree(u);
                if d > 0.0 {
                    1.0 / d.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        let mut a = self.adjacency_matrix();
        for u in 0..n {
            for v in 0..n {
                a[(u, v)] *= inv_sqrt[u] * inv_sqrt[v];
            }
        }
        a
    }
}

fn add_to_list(list: &mut Vec<(usize, f64)>, v: usize, w: f64) {
    match list.iter_mut().find(|(x, _)| *x == v) {
        Some((_, existing)) => *existing += w,
        None => list.push((v, w)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> WeightedGraph {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(0, 2, 3.0);
        g
    }

    #[test]
    fn edges_are_symmetric() {
        let g = triangle();
        assert_eq!(g.weight(0, 1), 1.0);
        assert_eq!(g.weight(1, 0), 1.0);
        assert_eq!(g.weight(2, 1), 2.0);
        assert_eq!(g.weight(0, 0), 0.0);
    }

    #[test]
    fn duplicate_edges_accumulate() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 0.5);
        assert_eq!(g.weight(0, 1), 1.5);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn zero_weight_ignored() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 0.0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn degrees_and_total() {
        let g = triangle();
        assert_eq!(g.degree(0), 4.0);
        assert_eq!(g.degree(1), 3.0);
        assert_eq!(g.degree(2), 5.0);
        assert_eq!(g.total_weight(), 6.0);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn self_loop_counts_once() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 0, 2.0);
        assert_eq!(g.weight(0, 0), 2.0);
        assert_eq!(g.degree(0), 2.0);
        assert_eq!(g.total_weight(), 2.0);
    }

    #[test]
    fn adjacency_matrix_symmetric() {
        let g = triangle();
        let a = g.adjacency_matrix();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
        assert_eq!(a[(0, 2)], 3.0);
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let g = triangle();
        let a = g.row_normalized_adjacency();
        for i in 0..3 {
            let s: f64 = a.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn isolated_vertex_zero_row() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        let a = g.row_normalized_adjacency();
        assert!(a.row(2).iter().all(|&x| x == 0.0));
        let s = g.symmetric_normalized_adjacency();
        assert!(s.row(2).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn symmetric_normalization_is_symmetric() {
        let g = triangle();
        let s = g.symmetric_normalized_adjacency();
        for i in 0..3 {
            for j in 0..3 {
                assert!((s[(i, j)] - s[(j, i)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "vertex out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn add_edge_negative_panics() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, -1.0);
    }
}
