//! Document-similarity graphs from term–document matrices.
//!
//! Section 6: "Suppose that documents are nodes in a graph and that weights
//! on the edges capture conceptual proximity of two documents (for example,
//! this distance matrix could be derived from, or in fact coincide with,
//! AAᵀ)." For documents the natural Gram matrix is `AᵀA` (columns are
//! documents); this module builds the weighted graph whose edges are the
//! pairwise document inner products (optionally cosine-normalized and
//! thresholded), closing the loop between the probabilistic corpus model
//! and the graph-theoretic one: a corpus sampled from a separable model
//! yields a graph satisfying Theorem 6's hypothesis, and rank-k spectral
//! analysis of that graph recovers the topics.

use lsi_linalg::{CsrMatrix, LinearOperator};

use crate::graph::WeightedGraph;

/// How edge weights are derived from document vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimilarityKind {
    /// Raw inner products `aᵢ · aⱼ` (the `AᵀA` choice the paper names).
    InnerProduct,
    /// Cosine similarities (inner products of normalized documents) —
    /// insensitive to document length.
    Cosine,
}

/// Builds the document-similarity graph of a term–document matrix
/// (columns = documents). Edges with weight ≤ `threshold` are dropped;
/// pass `0.0` to keep every positive similarity.
///
/// Cost is `O(m² · k̄)` over document pairs (`k̄` = average distinct terms);
/// intended for experiment-scale corpora, matching the paper's usage.
pub fn document_similarity_graph(
    a: &CsrMatrix,
    kind: SimilarityKind,
    threshold: f64,
) -> WeightedGraph {
    let m = a.ncols();
    // Columns are strided in CSR; transpose once so documents are rows.
    let at = a.transpose();
    let docs: Vec<Vec<(usize, f64)>> = (0..m).map(|j| at.row_entries(j).collect()).collect();
    let norms = a.column_norms();

    let mut g = WeightedGraph::new(m);
    for i in 0..m {
        for j in i + 1..m {
            let dot = sparse_dot(&docs[i], &docs[j]);
            let w = match kind {
                SimilarityKind::InnerProduct => dot,
                SimilarityKind::Cosine => {
                    let denom = norms[i] * norms[j];
                    if denom > 0.0 {
                        (dot / denom).clamp(-1.0, 1.0)
                    } else {
                        0.0
                    }
                }
            };
            if w > threshold {
                g.add_edge(i, j, w);
            }
        }
    }
    g
}

/// Convenience: the leakage fraction of a labeled similarity graph — the
/// measured ε of Theorem 6's hypothesis on a concrete instance.
pub fn label_leakage(g: &WeightedGraph, labels: &[usize]) -> f64 {
    assert_eq!(g.len(), labels.len(), "one label per vertex");
    (0..g.len())
        .map(|u| {
            let total = g.degree(u);
            if total <= 0.0 {
                return 0.0;
            }
            let inter: f64 = g
                .neighbors(u)
                .iter()
                .filter(|&&(v, _)| labels[v] != labels[u])
                .map(|&(_, w)| w)
                .sum();
            inter / total
        })
        .fold(0.0, f64::max)
}

/// Dot product of two sparse vectors given as sorted `(index, value)`
/// pairs — the single sparse-product kernel both the graph builder and
/// [`sparse_cosine`] use.
pub fn sparse_dot(a: &[(usize, f64)], b: &[(usize, f64)]) -> f64 {
    let mut dot = 0.0;
    let (mut p, mut q) = (0usize, 0usize);
    while p < a.len() && q < b.len() {
        match a[p].0.cmp(&b[q].0) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                dot += a[p].1 * b[q].1;
                p += 1;
                q += 1;
            }
        }
    }
    dot
}

/// Cosine of two sparse documents (sorted `(index, value)` pairs).
pub fn sparse_cosine(a: &[(usize, f64)], b: &[(usize, f64)]) -> f64 {
    let na = a.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
    let nb = b.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
    if na <= 0.0 || nb <= 0.0 {
        0.0
    } else {
        (sparse_dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // 4 terms × 4 docs: docs {0,1} share term 0; docs {2,3} share
        // term 2; doc 1 also weakly touches term 2.
        CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 2.0),
                (0, 1, 2.0),
                (2, 1, 0.5),
                (2, 2, 3.0),
                (2, 3, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn inner_product_weights() {
        let g = document_similarity_graph(&sample(), SimilarityKind::InnerProduct, 0.0);
        assert_eq!(g.weight(0, 1), 4.0);
        assert_eq!(g.weight(2, 3), 9.0);
        assert_eq!(g.weight(1, 2), 1.5);
        assert_eq!(g.weight(0, 2), 0.0);
    }

    #[test]
    fn cosine_weights_normalized() {
        let g = document_similarity_graph(&sample(), SimilarityKind::Cosine, 0.0);
        assert!((g.weight(2, 3) - 1.0).abs() < 1e-12);
        let expect01 = 4.0 / (2.0 * (4.0f64 + 0.25).sqrt());
        assert!((g.weight(0, 1) - expect01).abs() < 1e-12);
    }

    #[test]
    fn threshold_drops_weak_edges() {
        let g = document_similarity_graph(&sample(), SimilarityKind::InnerProduct, 2.0);
        assert_eq!(g.weight(1, 2), 0.0); // 1.5 <= 2.0 dropped
        assert_eq!(g.weight(0, 1), 4.0);
    }

    #[test]
    fn leakage_measures_cross_label_weight() {
        let g = document_similarity_graph(&sample(), SimilarityKind::InnerProduct, 0.0);
        let labels = vec![0, 0, 1, 1];
        let leak = label_leakage(&g, &labels);
        // Vertex 1: degree 4 + 1.5 + 1.5 (edges to docs 0, 2, 3); inter =
        // 1.5 + 1.5 → 3/7.
        assert!((leak - 3.0 / 7.0).abs() < 1e-12, "{leak}");
    }

    #[test]
    fn sparse_cosine_basics() {
        let a = vec![(0usize, 1.0), (2, 2.0)];
        let b = vec![(2usize, 1.0)];
        let c = sparse_cosine(&a, &b);
        assert!((c - 2.0 / 5.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(sparse_cosine(&a, &[]), 0.0);
    }

    #[test]
    fn corpus_graph_recovers_topics_spectrally() {
        use crate::spectral::{adjusted_rand_index, spectral_partition};
        use lsi_corpus::{SeparableConfig, SeparableModel};

        let model = SeparableModel::build(SeparableConfig::small(3, 0.05)).unwrap();
        let mut rng = lsi_linalg::rng::seeded(6);
        let corpus = model.model().sample_corpus(60, &mut rng);
        let a =
            CsrMatrix::from_triplets(corpus.universe_size(), corpus.len(), &corpus.to_triplets())
                .unwrap();
        let truth: Vec<usize> = corpus
            .topic_labels()
            .iter()
            .map(|l| l.expect("pure model"))
            .collect();

        let g = document_similarity_graph(&a, SimilarityKind::Cosine, 0.0);
        assert!(label_leakage(&g, &truth) < 0.5);
        let labels = spectral_partition(&g, 3, &mut lsi_linalg::rng::seeded(9)).unwrap();
        let ari = adjusted_rand_index(&labels, &truth);
        assert!(ari > 0.95, "ARI {ari}");
    }
}
