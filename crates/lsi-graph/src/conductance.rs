//! Conductance, exactly as defined in Section 4 of the paper:
//!
//! ```text
//! φ(G) = min_{S ⊂ V}  w(S, S̄) / min(|S|, |S̄|)
//! ```
//!
//! (weight of the cut normalized by the *cardinality* of the smaller side —
//! the paper's expansion-flavored variant, not the volume-normalized one).

use crate::graph::WeightedGraph;

/// Total weight of edges crossing between `set` and its complement.
/// `in_set` must have one entry per vertex.
pub fn cut_weight(g: &WeightedGraph, in_set: &[bool]) -> f64 {
    assert_eq!(in_set.len(), g.len(), "cut_weight: one flag per vertex");
    let mut w = 0.0;
    for u in 0..g.len() {
        if !in_set[u] {
            continue;
        }
        for &(v, weight) in g.neighbors(u) {
            if !in_set[v] {
                w += weight;
            }
        }
    }
    w
}

/// Conductance of a single cut: `w(S, S̄) / min(|S|, |S̄|)`.
/// Returns `None` for the trivial cuts (`S = ∅` or `S = V`).
pub fn conductance_of_set(g: &WeightedGraph, in_set: &[bool]) -> Option<f64> {
    let size: usize = in_set.iter().filter(|&&b| b).count();
    if size == 0 || size == g.len() {
        return None;
    }
    let denom = size.min(g.len() - size) as f64;
    Some(cut_weight(g, in_set) / denom)
}

/// Exact minimum conductance by exhaustive enumeration of all nontrivial
/// cuts. `O(2ⁿ)` — refuses graphs with more than `max_n` vertices (use the
/// sweep-cut bound beyond that).
pub fn min_conductance_exhaustive(g: &WeightedGraph, max_n: usize) -> Option<f64> {
    let n = g.len();
    // 63 is the hard ceiling regardless of the caller's cap: the cut
    // enumeration shifts a u64 by n−1.
    if n < 2 || n > max_n.min(63) {
        return None;
    }
    let mut best = f64::INFINITY;
    // Fix vertex 0 out of S to halve the enumeration (complement symmetry).
    for mask in 1u64..(1u64 << (n - 1)) {
        let in_set: Vec<bool> = (0..n)
            .map(|v| v > 0 && (mask >> (v - 1)) & 1 == 1)
            .collect();
        if let Some(c) = conductance_of_set(g, &in_set) {
            best = best.min(c);
        }
    }
    best.is_finite().then_some(best)
}

/// Sweep-cut upper bound on the minimum conductance: sorts vertices by the
/// given embedding score (typically a Fiedler-style eigenvector) and takes
/// the best prefix cut. Cheap (`O(n · m)` over prefixes here, adequate for
/// experiment sizes) and a classical companion to spectral partitioning.
pub fn sweep_cut_conductance(g: &WeightedGraph, scores: &[f64]) -> Option<f64> {
    assert_eq!(scores.len(), g.len(), "sweep_cut: one score per vertex");
    let n = g.len();
    if n < 2 {
        return None;
    }
    let mut order: Vec<usize> = (0..n).collect();
    // lsi-lint: allow(E1-panic-policy, "invariant: sweep scores come from a finite eigenvector")
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));

    let mut in_set = vec![false; n];
    let mut best = f64::INFINITY;
    for &v in order.iter().take(n - 1) {
        in_set[v] = true;
        if let Some(c) = conductance_of_set(g, &in_set) {
            best = best.min(c);
        }
    }
    best.is_finite().then_some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by one weak edge.
    fn barbell(bridge: f64) -> WeightedGraph {
        let mut g = WeightedGraph::new(6);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(a, b, 1.0);
        }
        g.add_edge(2, 3, bridge);
        g
    }

    #[test]
    fn cut_weight_basics() {
        let g = barbell(0.5);
        let left = vec![true, true, true, false, false, false];
        assert_eq!(cut_weight(&g, &left), 0.5);
        let one = vec![true, false, false, false, false, false];
        assert_eq!(cut_weight(&g, &one), 2.0); // vertex 0 has two unit edges
    }

    #[test]
    fn conductance_of_balanced_cut() {
        let g = barbell(0.5);
        let left = vec![true, true, true, false, false, false];
        let c = conductance_of_set(&g, &left).unwrap();
        assert!((c - 0.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_cuts_rejected() {
        let g = barbell(1.0);
        assert!(conductance_of_set(&g, &[false; 6]).is_none());
        assert!(conductance_of_set(&g, &[true; 6]).is_none());
    }

    #[test]
    fn exhaustive_finds_the_bridge() {
        let g = barbell(0.1);
        let c = min_conductance_exhaustive(&g, 20).unwrap();
        assert!((c - 0.1 / 3.0).abs() < 1e-12, "{c}");
    }

    #[test]
    fn exhaustive_respects_size_cap() {
        let g = WeightedGraph::new(25);
        assert!(min_conductance_exhaustive(&g, 20).is_none());
    }

    #[test]
    fn complete_graph_has_high_conductance() {
        let n = 6;
        let mut g = WeightedGraph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(i, j, 1.0);
            }
        }
        let c = min_conductance_exhaustive(&g, 20).unwrap();
        // Best cut of K6: |S| = 3 gives 9/3 = 3.
        assert!((c - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_cut_finds_planted_cut_with_good_scores() {
        let g = barbell(0.05);
        // Scores that separate the halves.
        let scores = vec![-1.0, -0.9, -0.8, 0.8, 0.9, 1.0];
        let c = sweep_cut_conductance(&g, &scores).unwrap();
        assert!((c - 0.05 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_cut_upper_bounds_exhaustive() {
        let g = barbell(0.3);
        let scores = vec![0.3, -0.2, 0.9, -0.8, 0.1, 0.5]; // arbitrary
        let sweep = sweep_cut_conductance(&g, &scores).unwrap();
        let exact = min_conductance_exhaustive(&g, 20).unwrap();
        assert!(sweep >= exact - 1e-12);
    }

    #[test]
    fn single_vertex_graph() {
        let g = WeightedGraph::new(1);
        assert!(min_conductance_exhaustive(&g, 20).is_none());
        assert!(sweep_cut_conductance(&g, &[0.0]).is_none());
    }
}
