//! Planted-partition graphs matching Theorem 6's hypothesis.
//!
//! "The corpus consists of k disjoint subgraphs with high conductance, and
//! is joined with edges of total weight per vertex bounded from above by an
//! ε fraction." The generator builds k dense blocks (Erdős–Rényi inside
//! each block) and sprinkles inter-block edges whose total weight at each
//! vertex stays below ε times the vertex's intra-block weight.

use rand::Rng;

use crate::graph::WeightedGraph;

/// Parameters of the planted-partition generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantedConfig {
    /// Number of blocks `k`.
    pub blocks: usize,
    /// Vertices per block.
    pub block_size: usize,
    /// Probability of each intra-block edge (unit weight).
    pub p_intra: f64,
    /// Per-vertex inter-block leakage ε: each vertex *originates* cross
    /// edges of total weight `ε ×` its intra-block degree. Because edges
    /// are undirected, a vertex can additionally *receive* cross edges
    /// originated by others, so its realized leakage fraction can exceed
    /// ε; [`PlantedPartition::measured_leakage`] reports the realized
    /// maximum.
    pub epsilon: f64,
}

/// A generated planted partition: the graph plus the ground truth.
#[derive(Debug, Clone)]
pub struct PlantedPartition {
    /// The generated graph.
    pub graph: WeightedGraph,
    /// Ground-truth block label per vertex.
    pub labels: Vec<usize>,
    config: PlantedConfig,
}

impl PlantedPartition {
    /// Generates a planted partition. Panics on degenerate parameters
    /// (`blocks == 0`, `block_size < 2`, probabilities outside `[0, 1]`).
    pub fn generate<R: Rng + ?Sized>(config: PlantedConfig, rng: &mut R) -> Self {
        assert!(config.blocks >= 1, "need at least one block");
        assert!(config.block_size >= 2, "blocks need at least two vertices");
        assert!(
            (0.0..=1.0).contains(&config.p_intra),
            "p_intra must be a probability"
        );
        assert!(config.epsilon >= 0.0, "epsilon must be nonnegative");

        let n = config.blocks * config.block_size;
        let mut g = WeightedGraph::new(n);
        let labels: Vec<usize> = (0..n).map(|v| v / config.block_size).collect();

        // Intra-block Erdős–Rényi edges of unit weight; guarantee
        // connectivity of each block with a Hamiltonian path so conductance
        // can't collapse by accident at small sizes.
        for b in 0..config.blocks {
            let lo = b * config.block_size;
            let hi = lo + config.block_size;
            for u in lo..hi {
                for v in u + 1..hi {
                    if v == u + 1 || rng.gen::<f64>() < config.p_intra {
                        g.add_edge(u, v, 1.0);
                    }
                }
            }
        }

        // Inter-block leakage: each vertex gets a few random cross edges
        // whose total weight is ε × its intra-block degree. Snapshot the
        // intra-only degrees first so cross edges added for earlier vertices
        // don't inflate later vertices' budgets.
        if config.epsilon > 0.0 && config.blocks > 1 {
            let intra_degree: Vec<f64> = (0..n).map(|u| g.degree(u)).collect();
            for u in 0..n {
                let budget = config.epsilon * intra_degree[u];
                if budget <= 0.0 {
                    continue;
                }
                // Spread the budget over up to 3 random cross edges.
                let pieces = 3.min(n - config.block_size);
                let w = budget / pieces as f64;
                for _ in 0..pieces {
                    // Rejection-sample a vertex outside u's block.
                    loop {
                        let v = rng.gen_range(0..n);
                        if labels[v] != labels[u] {
                            g.add_edge(u, v, w);
                            break;
                        }
                    }
                }
            }
        }

        PlantedPartition {
            graph: g,
            labels,
            config,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &PlantedConfig {
        &self.config
    }

    /// Measured leakage: the largest, over vertices, of (inter-block weight)
    /// / (total weight) — what Theorem 6 bounds by ε/(1+ε)-ish.
    pub fn measured_leakage(&self) -> f64 {
        let g = &self.graph;
        (0..g.len())
            .map(|u| {
                let total = g.degree(u);
                if total <= 0.0 {
                    return 0.0;
                }
                let inter: f64 = g
                    .neighbors(u)
                    .iter()
                    .filter(|&&(v, _)| self.labels[v] != self.labels[u])
                    .map(|&(_, w)| w)
                    .sum();
                inter / total
            })
            .fold(0.0, f64::max)
    }

    /// Minimum over blocks of the block's internal conductance (computed
    /// exhaustively on the block's induced subgraph; blocks must have ≤ 20
    /// vertices). High values confirm Theorem 6's "high conductance"
    /// hypothesis holds for the instance.
    pub fn min_block_conductance(&self) -> Option<f64> {
        let k = self.config.blocks;
        let s = self.config.block_size;
        let mut worst = f64::INFINITY;
        for b in 0..k {
            let lo = b * s;
            // Induced subgraph.
            let mut sub = WeightedGraph::new(s);
            for u in 0..s {
                for &(v, w) in self.graph.neighbors(lo + u) {
                    if v >= lo && v < lo + s && v > lo + u {
                        sub.add_edge(u, v - lo, w);
                    }
                }
            }
            worst = worst.min(crate::conductance::min_conductance_exhaustive(&sub, 20)?);
        }
        worst.is_finite().then_some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn config(k: usize, eps: f64) -> PlantedConfig {
        PlantedConfig {
            blocks: k,
            block_size: 10,
            p_intra: 0.8,
            epsilon: eps,
        }
    }

    #[test]
    fn shapes_and_labels() {
        let p = PlantedPartition::generate(config(3, 0.05), &mut rng(1));
        assert_eq!(p.graph.len(), 30);
        assert_eq!(p.labels.len(), 30);
        assert_eq!(p.labels[0], 0);
        assert_eq!(p.labels[29], 2);
    }

    #[test]
    fn zero_epsilon_means_disjoint_blocks() {
        let p = PlantedPartition::generate(config(3, 0.0), &mut rng(2));
        for u in 0..p.graph.len() {
            for &(v, _) in p.graph.neighbors(u) {
                assert_eq!(p.labels[u], p.labels[v], "cross edge {u}-{v}");
            }
        }
        assert_eq!(p.measured_leakage(), 0.0);
    }

    #[test]
    fn leakage_close_to_epsilon() {
        let p = PlantedPartition::generate(config(4, 0.1), &mut rng(3));
        let leak = p.measured_leakage();
        // Budget was ε× the intra degree at generation time; later incoming
        // cross edges can push a vertex somewhat above it.
        assert!(leak > 0.0 && leak < 0.35, "leakage {leak}");
    }

    #[test]
    fn blocks_have_high_conductance() {
        let p = PlantedPartition::generate(config(2, 0.0), &mut rng(4));
        let c = p.min_block_conductance().unwrap();
        // Dense ER blocks at p = 0.8 on 10 vertices are near-complete.
        assert!(c > 1.0, "block conductance {c}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = PlantedPartition::generate(config(3, 0.05), &mut rng(9));
        let b = PlantedPartition::generate(config(3, 0.05), &mut rng(9));
        assert_eq!(a.graph.total_weight(), b.graph.total_weight());
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn rejects_tiny_blocks() {
        PlantedPartition::generate(
            PlantedConfig {
                blocks: 2,
                block_size: 1,
                p_intra: 0.5,
                epsilon: 0.0,
            },
            &mut rng(1),
        );
    }
}
