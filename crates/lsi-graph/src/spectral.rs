//! Rank-k spectral subgraph discovery (Theorem 6) and recovery scoring.
//!
//! The partitioner embeds each vertex as its row in the matrix of top-k
//! eigenvectors of the symmetrically-normalized adjacency, row-normalizes,
//! and clusters with seeded k-means (k-means++ initialization). Under
//! Theorem 6's hypothesis the embedded blocks are nearly orthogonal point
//! masses, so the clustering is essentially exact.

use lsi_linalg::eigen::symmetric_eigen;
use lsi_linalg::{vector, LinalgError, Matrix};
use rand::Rng;

use crate::graph::WeightedGraph;

/// Partitions the graph's vertices into `k` clusters by rank-k spectral
/// embedding + k-means. Returns one label in `0..k` per vertex.
pub fn spectral_partition<R: Rng + ?Sized>(
    g: &WeightedGraph,
    k: usize,
    rng: &mut R,
) -> Result<Vec<usize>, LinalgError> {
    let n = g.len();
    if k == 0 || k > n {
        return Err(LinalgError::InvalidDimension {
            op: "spectral_partition",
            detail: format!("need 1 <= k <= n = {n}, got k = {k}"),
        });
    }

    let a = g.symmetric_normalized_adjacency();
    let eig = symmetric_eigen(&a, 1e-9)?;

    // Embedding: rows of the top-k eigenvector matrix, row-normalized so
    // cluster geometry is angular (degree-insensitive).
    let mut embed = Matrix::zeros(n, k);
    for j in 0..k {
        let v = eig.eigenvector(j);
        for (i, &x) in v.iter().enumerate() {
            embed[(i, j)] = x;
        }
    }
    for i in 0..n {
        let norm = vector::norm(embed.row(i));
        if norm > 0.0 {
            for x in embed.row_mut(i) {
                *x /= norm;
            }
        }
    }

    Ok(kmeans(&embed, k, rng))
}

/// Seeded k-means with k-means++ initialization over the **rows** of
/// `points`, returning one label in `0..k` per row.
///
/// Public because it is useful beyond the spectral partitioner — e.g. for
/// clustering LSI document representations directly (experiment E14). Runs
/// at most 100 Lloyd iterations; with well-separated inputs it converges in
/// a handful. An empty `points` yields an empty labeling.
///
/// # Panics
/// Panics if `k == 0` (there is no 0-way partition to return).
pub fn kmeans<R: Rng + ?Sized>(points: &Matrix, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k >= 1, "kmeans: k must be at least 1");
    let n = points.nrows();
    if n == 0 {
        return Vec::new();
    }
    let d = points.ncols();

    // k-means++ seeding.
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(points.row(rng.gen_range(0..n)).to_vec());
    while centers.len() < k {
        let dists: Vec<f64> = (0..n)
            .map(|i| {
                centers
                    .iter()
                    .map(|c| vector::distance(points.row(i), c).powi(2))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centers: duplicate one.
            centers.push(centers[0].clone());
            continue;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut chosen = n - 1;
        for (i, &w) in dists.iter().enumerate() {
            if target < w {
                chosen = i;
                break;
            }
            target -= w;
        }
        centers.push(points.row(chosen).to_vec());
    }

    // Lloyd iterations.
    let mut labels = vec![0usize; n];
    for _ in 0..100 {
        let mut changed = false;
        for (i, label) in labels.iter_mut().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    let da = vector::distance(points.row(i), &centers[a]);
                    let db = vector::distance(points.row(i), &centers[b]);
                    da.partial_cmp(&db).expect("finite distances")
                })
                .expect("k >= 1");
            if *label != best {
                *label = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = vec![vec![0.0; d]; k];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[labels[i]] += 1;
            vector::axpy(1.0, points.row(i), &mut sums[labels[i]]);
        }
        for (c, (sum, count)) in centers.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                *c = sum.iter().map(|x| x / *count as f64).collect();
            }
        }
    }
    labels
}

/// Adjusted Rand index between two labelings (1.0 = identical partitions up
/// to renaming, ≈ 0 = chance agreement).
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same items");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ka = a.iter().max().map_or(0, |&m| m + 1);
    let kb = b.iter().max().map_or(0, |&m| m + 1);
    let mut table = vec![vec![0u64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1;
    }
    let choose2 = |x: u64| -> f64 { (x * x.saturating_sub(1)) as f64 / 2.0 };
    let sum_ij: f64 = table.iter().flatten().map(|&x| choose2(x)).sum();
    let sum_a: f64 = table
        .iter()
        .map(|row| choose2(row.iter().sum::<u64>()))
        .sum();
    let sum_b: f64 = (0..kb)
        .map(|j| choose2(table.iter().map(|row| row[j]).sum::<u64>()))
        .sum();
    let total = choose2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        return 1.0; // degenerate: both partitions trivial
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planted::{PlantedConfig, PlantedPartition};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn ari_identical_and_permuted() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        let b = vec![2, 2, 0, 0, 1, 1]; // same partition, renamed
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_disagreement_is_low() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1];
        assert!(adjusted_rand_index(&a, &b) < 0.3);
    }

    #[test]
    fn ari_trivial_partitions() {
        let a = vec![0, 0, 0];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
    }

    #[test]
    fn recovers_disjoint_blocks_exactly() {
        let p = PlantedPartition::generate(
            PlantedConfig {
                blocks: 3,
                block_size: 10,
                p_intra: 0.9,
                epsilon: 0.0,
            },
            &mut rng(1),
        );
        let labels = spectral_partition(&p.graph, 3, &mut rng(2)).unwrap();
        let ari = adjusted_rand_index(&labels, &p.labels);
        assert!((ari - 1.0).abs() < 1e-12, "ARI {ari}");
    }

    #[test]
    fn recovers_blocks_with_small_leakage() {
        let p = PlantedPartition::generate(
            PlantedConfig {
                blocks: 4,
                block_size: 12,
                p_intra: 0.85,
                epsilon: 0.05,
            },
            &mut rng(3),
        );
        let labels = spectral_partition(&p.graph, 4, &mut rng(4)).unwrap();
        let ari = adjusted_rand_index(&labels, &p.labels);
        assert!(ari > 0.95, "ARI {ari}");
    }

    #[test]
    fn heavy_leakage_degrades() {
        let light = PlantedPartition::generate(
            PlantedConfig {
                blocks: 3,
                block_size: 10,
                p_intra: 0.8,
                epsilon: 0.02,
            },
            &mut rng(5),
        );
        let heavy = PlantedPartition::generate(
            PlantedConfig {
                blocks: 3,
                block_size: 10,
                p_intra: 0.8,
                epsilon: 2.0,
            },
            &mut rng(5),
        );
        let l1 = spectral_partition(&light.graph, 3, &mut rng(6)).unwrap();
        let l2 = spectral_partition(&heavy.graph, 3, &mut rng(6)).unwrap();
        let a1 = adjusted_rand_index(&l1, &light.labels);
        let a2 = adjusted_rand_index(&l2, &heavy.labels);
        assert!(a1 > a2, "light {a1} should beat heavy {a2}");
        assert!(a1 > 0.9);
    }

    #[test]
    fn rejects_bad_k() {
        let g = WeightedGraph::new(5);
        assert!(spectral_partition(&g, 0, &mut rng(1)).is_err());
        assert!(spectral_partition(&g, 6, &mut rng(1)).is_err());
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        use lsi_linalg::Matrix;
        let points = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.1, -0.1],
            &[0.05, 0.05],
            &[10.0, 10.0],
            &[10.1, 9.9],
            &[9.9, 10.1],
        ])
        .unwrap();
        let labels = kmeans(&points, 2, &mut rng(3));
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn kmeans_empty_input_and_zero_k() {
        use lsi_linalg::Matrix;
        assert!(kmeans(&Matrix::zeros(0, 3), 2, &mut rng(1)).is_empty());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            kmeans(&Matrix::zeros(3, 2), 0, &mut rng(1))
        }));
        assert!(caught.is_err(), "k = 0 must panic with a clear message");
    }

    #[test]
    fn kmeans_with_duplicate_points() {
        use lsi_linalg::Matrix;
        let points = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]).unwrap();
        // k larger than distinct points must still terminate with labels.
        let labels = kmeans(&points, 2, &mut rng(4));
        assert_eq!(labels.len(), 3);
        assert!(labels.iter().all(|&l| l < 2));
    }

    #[test]
    fn k_equals_one_labels_everything_together() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        let labels = spectral_partition(&g, 1, &mut rng(7)).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }
}
