//! Property-based tests for the graph model.

use proptest::prelude::*;
use rand::SeedableRng;

use lsi_graph::{
    adjusted_rand_index, conductance_of_set, cut_weight, min_conductance_exhaustive, WeightedGraph,
};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Strategy: a random weighted graph as an edge list.
fn graph_strategy() -> impl Strategy<Value = WeightedGraph> {
    (3usize..10).prop_flat_map(|n| {
        proptest::collection::vec(((0..n), (0..n), 0.1f64..5.0), 1..25).prop_map(move |edges| {
            let mut g = WeightedGraph::new(n);
            for (u, v, w) in edges {
                if u != v {
                    g.add_edge(u, v, w);
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cut weight of S equals cut weight of its complement.
    #[test]
    fn cut_weight_symmetric(g in graph_strategy(), mask in proptest::num::u64::ANY) {
        let n = g.len();
        let in_set: Vec<bool> = (0..n).map(|v| (mask >> v) & 1 == 1).collect();
        let complement: Vec<bool> = in_set.iter().map(|b| !b).collect();
        prop_assert!((cut_weight(&g, &in_set) - cut_weight(&g, &complement)).abs() < 1e-9);
    }

    /// Degrees sum to twice the total weight (minus self-loops, excluded
    /// by the strategy).
    #[test]
    fn handshake_lemma(g in graph_strategy()) {
        let degree_sum: f64 = (0..g.len()).map(|u| g.degree(u)).sum();
        prop_assert!((degree_sum - 2.0 * g.total_weight()).abs() < 1e-9);
    }

    /// The exhaustive minimum conductance lower-bounds every nontrivial cut.
    #[test]
    fn exhaustive_is_a_lower_bound(g in graph_strategy(), mask in proptest::num::u64::ANY) {
        let n = g.len();
        if let Some(min_c) = min_conductance_exhaustive(&g, 12) {
            let in_set: Vec<bool> = (0..n).map(|v| (mask >> v) & 1 == 1).collect();
            if let Some(c) = conductance_of_set(&g, &in_set) {
                prop_assert!(min_c <= c + 1e-9, "min {min_c} > cut {c}");
            }
        }
    }

    /// ARI is 1 for identical labelings and invariant under renaming.
    #[test]
    fn ari_identity_and_renaming(labels in proptest::collection::vec(0usize..4, 2..30)) {
        prop_assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-9);
        let renamed: Vec<usize> = labels.iter().map(|&l| 3 - l).collect();
        prop_assert!((adjusted_rand_index(&labels, &renamed) - 1.0).abs() < 1e-9);
    }

    /// ARI is symmetric in its arguments.
    #[test]
    fn ari_symmetric(
        a in proptest::collection::vec(0usize..3, 2..25),
        seed in proptest::num::u64::ANY,
    ) {
        use rand::Rng;
        let mut r = rng(seed);
        let b: Vec<usize> = a.iter().map(|_| r.gen_range(0..3)).collect();
        let ab = adjusted_rand_index(&a, &b);
        let ba = adjusted_rand_index(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab <= 1.0 + 1e-9);
    }
}
