//! Shared helpers for the experiment suite.

use lsi_corpus::{GeneratedCorpus, SeparableConfig, SeparableModel};
use lsi_ir::TermDocumentMatrix;
use lsi_linalg::rng::seeded;
use lsi_linalg::Matrix;

/// A generated experiment corpus with everything downstream steps need.
pub struct ExperimentCorpus {
    /// The separable model it was drawn from.
    pub model: SeparableModel,
    /// The sampled corpus.
    pub corpus: GeneratedCorpus,
    /// Its term–document matrix (raw counts).
    pub td: TermDocumentMatrix,
}

/// Samples a corpus of `m` documents from an ε-separable model.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
pub fn make_corpus(config: SeparableConfig, m: usize, seed: u64) -> ExperimentCorpus {
    let model = SeparableModel::build(config).expect("valid experiment configuration");
    let mut rng = seeded(seed);
    let corpus = model.model().sample_corpus(m, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("corpus fits its universe");
    ExperimentCorpus { model, corpus, td }
}

/// The paper's exact Section 4 corpus (2000 terms, 20 topics, 1000 docs).
pub fn paper_corpus(seed: u64) -> ExperimentCorpus {
    make_corpus(SeparableConfig::paper_experiment(), 1000, seed)
}

/// A proportionally scaled-down paper corpus for fast benches: `scale` in
/// (0, 1] shrinks terms, topics and documents together.
pub fn scaled_corpus(scale: f64, epsilon: f64, seed: u64) -> ExperimentCorpus {
    let topics = ((20.0 * scale).round() as usize).max(2);
    let terms_per_topic = ((100.0 * scale).round() as usize).max(5);
    let docs = ((1000.0 * scale).round() as usize).max(20);
    let config = SeparableConfig {
        universe_size: topics * terms_per_topic,
        num_topics: topics,
        primary_terms_per_topic: terms_per_topic,
        epsilon,
        min_doc_len: 50,
        max_doc_len: 100,
    };
    make_corpus(config, docs, seed)
}

/// Document vectors in the **original term space** as rows (`m × n`), the
/// representation whose pairwise angles the paper compares against.
pub fn original_space_rows(td: &TermDocumentMatrix) -> Matrix {
    td.counts().transpose().to_dense_matrix()
}

/// Wall-clock seconds for one invocation of `f`.
pub fn time_secs<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Formats a `f64` with 4 significant decimals, aligned for tables.
pub fn fmt(x: f64) -> String {
    format!("{x:>10.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_corpus_dimensions() {
        let e = scaled_corpus(0.2, 0.05, 1);
        assert_eq!(e.model.config().num_topics, 4);
        assert_eq!(e.model.config().primary_terms_per_topic, 20);
        assert_eq!(e.td.n_docs(), 200);
        assert_eq!(e.td.n_terms(), 80);
    }

    #[test]
    fn original_space_rows_shape() {
        let e = scaled_corpus(0.1, 0.05, 2);
        let rows = original_space_rows(&e.td);
        assert_eq!(rows.nrows(), e.td.n_docs());
        assert_eq!(rows.ncols(), e.td.n_terms());
    }

    #[test]
    fn time_secs_returns_value() {
        let (v, s) = time_secs(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }
}
