#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Experiment suite reproducing every table and quantitative claim in the
//! paper's evaluation, plus ablations of this reproduction's own design
//! choices. See `DESIGN.md` §3 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! Each module `eN_*` implements one experiment with a `run*` entry point
//! returning a typed result that renders via `.table()`. The `reproduce`
//! binary drives them all; the Criterion benches reuse the same code at
//! bench-friendly scales.

pub mod common;
pub mod e10_ablations;
pub mod e11_sampling;
pub mod e12_mixtures;
pub mod e13_polysemy;
pub mod e14_clustering;
pub mod e15_styles;
pub mod e1_angles;
pub mod e2_skew;
pub mod e3_asymptotics;
pub mod e4_jl;
pub mod e5_twostep;
pub mod e6_runtime;
pub mod e7_synonymy;
pub mod e8_graph;
pub mod e9_eckart_young;
