//! E1 — the paper's table (Section 4 "Experiments"): intratopic and
//! intertopic pairwise document angles, original space vs rank-k LSI space.

use lsi_core::angles::{format_report, pairwise_angle_stats, PairAngleReport};
use lsi_core::{LsiConfig, LsiIndex};

use crate::common::{original_space_rows, paper_corpus, scaled_corpus, ExperimentCorpus};

/// Outcome of the angle experiment.
pub struct E1Result {
    /// Angle statistics in the original term space.
    pub original: PairAngleReport,
    /// Angle statistics in the rank-k LSI space.
    pub lsi: PairAngleReport,
    /// Rank used (the number of topics).
    pub rank: usize,
}

impl E1Result {
    /// Renders the paper's table.
    pub fn table(&self) -> String {
        format_report(&self.original, &self.lsi)
    }

    /// The paper's headline effect: how many times smaller the average
    /// intratopic angle is in LSI space (paper: 1.09 → 0.0177, ≈ 62×).
    pub fn intratopic_collapse_factor(&self) -> Option<f64> {
        let orig = self.original.intratopic?.mean;
        let lsi = self.lsi.intratopic?.mean;
        (lsi > 0.0).then(|| orig / lsi)
    }
}

///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
fn run_on(exp: &ExperimentCorpus) -> E1Result {
    let rank = exp.model.config().num_topics;
    let labels = exp.td.topic_labels().to_vec();

    let original_rows = original_space_rows(&exp.td);
    let original = pairwise_angle_stats(&original_rows, &labels);

    let index = LsiIndex::build(&exp.td, LsiConfig::with_rank(rank))
        .expect("experiment corpus always admits rank = #topics");
    let lsi = pairwise_angle_stats(index.doc_representations(), &labels);

    E1Result {
        original,
        lsi,
        rank,
    }
}

/// Runs E1 at the paper's exact configuration (2000 terms, 20 topics,
/// 1000 documents, rank-20 LSI).
pub fn run_paper(seed: u64) -> E1Result {
    run_on(&paper_corpus(seed))
}

/// Runs E1 on a proportionally scaled-down corpus (for benches and tests).
pub fn run_scaled(scale: f64, seed: u64) -> E1Result {
    run_on(&scaled_corpus(scale, 0.05, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angles_collapse_on_small_corpus() {
        let r = run_scaled(0.15, 42);
        let orig_intra = r.original.intratopic.unwrap();
        let lsi_intra = r.lsi.intratopic.unwrap();
        let lsi_inter = r.lsi.intertopic.unwrap();

        // The paper's qualitative shape: intratopic angles collapse…
        assert!(
            lsi_intra.mean < orig_intra.mean / 5.0,
            "no collapse: {} -> {}",
            orig_intra.mean,
            lsi_intra.mean
        );
        // …while intertopic pairs stay essentially orthogonal on average.
        assert!(
            lsi_inter.mean > 1.2,
            "intertopic mean collapsed: {}",
            lsi_inter.mean
        );
        assert!(r.intratopic_collapse_factor().unwrap() > 5.0);
    }

    #[test]
    fn table_renders() {
        let r = run_scaled(0.1, 7);
        let t = r.table();
        assert!(t.contains("Intratopic"));
        assert!(t.contains("LSI space"));
    }
}
