//! E14 — "LSI does a particularly good job of classifying documents when
//! applied to such a corpus" (Section 4, right after the δ-skew
//! definition): unsupervised document clustering in raw term space vs
//! rank-k LSI space, scored by adjusted Rand index against the generating
//! topics.

use lsi_core::{LsiConfig, LsiIndex};
use lsi_graph::{adjusted_rand_index, kmeans};
use lsi_linalg::rng::seeded;
use lsi_linalg::{vector, Matrix};

use crate::common::{original_space_rows, scaled_corpus};

/// One clustering comparison.
#[derive(Debug, Clone, Copy)]
pub struct E14Row {
    /// Model separability ε.
    pub epsilon: f64,
    /// k-means ARI on raw term-space document vectors (cosine-normalized).
    pub raw_ari: f64,
    /// k-means ARI on LSI document representations.
    pub lsi_ari: f64,
}

/// Sweep result.
pub struct E14Result {
    /// One row per ε.
    pub rows: Vec<E14Row>,
}

impl E14Result {
    /// Renders a table.
    pub fn table(&self) -> String {
        let mut out = String::from("epsilon   raw-space ARI   LSI-space ARI\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:>7.3} {:>15.4} {:>15.4}\n",
                r.epsilon, r.raw_ari, r.lsi_ari
            ));
        }
        out
    }
}

/// Row-normalizes a matrix copy so k-means clusters by direction (cosine
/// geometry), matching how both spaces are actually used for retrieval.
fn normalized_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.nrows() {
        let n = vector::norm(out.row(i));
        if n > 0.0 {
            for x in out.row_mut(i) {
                *x /= n;
            }
        }
    }
    out
}

/// Runs the comparison across separability levels.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
pub fn run(scale: f64, epsilons: &[f64], seed: u64) -> E14Result {
    let rows = epsilons
        .iter()
        .map(|&eps| {
            let exp = scaled_corpus(scale, eps, seed);
            let k = exp.model.config().num_topics;
            let truth: Vec<usize> = exp
                .td
                .topic_labels()
                .iter()
                .map(|l| l.expect("pure model"))
                .collect();

            let raw = normalized_rows(&original_space_rows(&exp.td));
            let raw_labels = kmeans(&raw, k, &mut seeded(seed ^ 0xaa));
            let raw_ari = adjusted_rand_index(&raw_labels, &truth);

            let index = LsiIndex::build(&exp.td, LsiConfig::with_rank(k)).expect("feasible rank");
            let lsi = normalized_rows(index.doc_representations());
            let lsi_labels = kmeans(&lsi, k, &mut seeded(seed ^ 0xbb));
            let lsi_ari = adjusted_rand_index(&lsi_labels, &truth);

            E14Row {
                epsilon: eps,
                raw_ari,
                lsi_ari,
            }
        })
        .collect();
    E14Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsi_space_clusters_at_least_as_well() {
        let r = run(0.15, &[0.05, 0.2], 101);
        for row in &r.rows {
            assert!(
                row.lsi_ari >= row.raw_ari - 0.05,
                "eps {}: LSI {} below raw {}",
                row.epsilon,
                row.lsi_ari,
                row.raw_ari
            );
            assert!(
                row.lsi_ari > 0.9,
                "eps {}: LSI ARI {}",
                row.epsilon,
                row.lsi_ari
            );
        }
    }

    #[test]
    fn table_renders() {
        let r = run(0.1, &[0.05], 5);
        assert!(r.table().contains("LSI-space ARI"));
    }
}
