//! E7 — the synonymy analysis of Section 4: two terms used interchangeably
//! ("car"/"automobile") produce near-identical rows of `A Aᵀ`; their
//! difference direction is a trailing eigenvector that rank-k LSI projects
//! out, collapsing the synonyms onto one concept.
//!
//! The corpus is generated with the **style** machinery of the corpus model
//! (Definition 3): a "plain" style keeps the concept word as `car`, a
//! "formal" style rewrites every occurrence to `automobile`; each document
//! draws one style, so the two surface forms never co-occur yet share their
//! entire context — the paper's identical-co-occurrence setting.

use lsi_core::synonymy::{analyze_synonym_pair, SynonymyReport};
use lsi_core::{LsiConfig, LsiIndex, SvdBackend};
use lsi_corpus::{CorpusModel, DocumentLaw, Style, Topic};
use lsi_ir::{TermDocumentMatrix, Weighting};
use lsi_linalg::rng::seeded;

/// Term id of the first synonym surface form ("car").
pub const CAR: usize = 0;
/// Term id of the second synonym surface form ("automobile").
pub const AUTOMOBILE: usize = 1;

/// Result of the synonymy experiment.
pub struct E7Result {
    /// Spectral report for the synonym pair.
    pub report: SynonymyReport,
    /// Number of documents generated.
    pub n_docs: usize,
}

impl E7Result {
    /// Renders the findings.
    pub fn table(&self) -> String {
        let r = &self.report;
        format!(
            "synonym pair (car={CAR}, automobile={AUTOMOBILE}) over {} docs\n\
             difference-vector alignment with one eigenvector: {:.4}\n\
             aligned eigenvector rank: {} of {} (0 = top)\n\
             aligned eigenvalue / top eigenvalue: {:.6}\n\
             term cosine, original space: {:.4}\n\
             term cosine, LSI space:      {:.4}\n",
            self.n_docs,
            r.alignment,
            r.aligned_eigen_index,
            r.spectrum_size,
            r.aligned_eigenvalue / r.top_eigenvalue.max(f64::MIN_POSITIVE),
            r.original_cosine,
            r.lsi_cosine
        )
    }
}

/// Builds the synonym corpus and runs the analysis.
///
/// `n_docs` documents over a 30-term universe, two topics ("vehicles" with
/// the synonym pair, "space travel" as contrast), rank-2 LSI.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
pub fn run(n_docs: usize, seed: u64) -> E7Result {
    let universe = 30;
    // Topic "vehicles": context terms 2..=10, plus the concept word (CAR)
    // with a deliberately *small* occurrence probability — the paper's
    // synonymy model assumes the pair is rare, which is what pushes the
    // difference direction toward the bottom of the spectrum.
    let mut vehicle_weights = vec![0.0; universe];
    vehicle_weights[CAR] = 0.3;
    vehicle_weights[2..=10].fill(1.0);
    let vehicles = Topic::from_weights("vehicles", &vehicle_weights).expect("valid topic");
    // Topic "space travel": terms 15..=25.
    let space_terms: Vec<usize> = (15..=25).collect();
    let space = Topic::concentrated("space", universe, &space_terms, 1.0).expect("valid topic");

    // Styles: plain keeps "car"; formal always rewrites car → automobile.
    let plain = Style::identity(universe);
    let formal =
        Style::substitutions("formal", universe, &[(CAR, AUTOMOBILE, 1.0)]).expect("valid style");

    let model = CorpusModel::new(
        universe,
        vec![vehicles, space],
        vec![plain, formal],
        DocumentLaw {
            topics_per_doc: 1,
            style_mode: lsi_corpus::model::StyleMode::RandomSingle,
            length: lsi_corpus::LengthLaw::Uniform { min: 20, max: 40 },
        },
    )
    .expect("valid corpus model");

    let mut rng = seeded(seed);
    let corpus = model.sample_corpus(n_docs, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("corpus fits universe");

    let index = LsiIndex::build(
        &td,
        LsiConfig {
            rank: 2,
            weighting: Weighting::Count,
            backend: SvdBackend::Dense,
        },
    )
    .expect("rank 2 feasible");

    let report =
        analyze_synonym_pair(&td.to_dense(), &index, CAR, AUTOMOBILE).expect("valid synonym pair");

    E7Result {
        report,
        n_docs: corpus.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synonyms_collapse_in_lsi_space() {
        let r = run(150, 31);
        // Surface forms never co-occur, so raw cosine ≈ 0…
        assert!(
            r.report.original_cosine < 0.3,
            "original cosine {}",
            r.report.original_cosine
        );
        // …but LSI puts them nearly on top of each other.
        assert!(
            r.report.lsi_cosine > 0.9,
            "LSI cosine {}",
            r.report.lsi_cosine
        );
    }

    #[test]
    fn difference_is_outside_the_lsi_spectrum() {
        let r = run(150, 32);
        assert!(r.report.alignment > 0.8, "alignment {}", r.report.alignment);
        // The rank-2 LSI keeps eigen directions 0..2; the synonym
        // difference must land strictly below them, with a small
        // eigenvalue — that is what "LSI projects it out" means.
        assert!(
            r.report.aligned_eigen_index >= 2,
            "index {} of {}",
            r.report.aligned_eigen_index,
            r.report.spectrum_size
        );
        assert!(
            r.report.aligned_eigenvalue < 0.1 * r.report.top_eigenvalue,
            "eigenvalue ratio {}",
            r.report.aligned_eigenvalue / r.report.top_eigenvalue
        );
    }

    #[test]
    fn table_renders() {
        let r = run(80, 33);
        assert!(r.table().contains("LSI space"));
    }
}
