//! E8 — Theorem 6: rank-k spectral analysis of the graph-theoretic corpus
//! model recovers the planted high-conductance subgraphs, degrading
//! gracefully as the inter-block leakage ε grows.

use lsi_graph::{adjusted_rand_index, spectral_partition, PlantedConfig, PlantedPartition};
use lsi_linalg::rng::seeded;

/// One row of the leakage sweep.
#[derive(Debug, Clone, Copy)]
pub struct E8Row {
    /// Requested leakage ε.
    pub epsilon: f64,
    /// Measured per-vertex leakage fraction.
    pub measured_leakage: f64,
    /// Minimum internal conductance across blocks.
    pub min_block_conductance: f64,
    /// Adjusted Rand index of the spectral recovery vs ground truth.
    pub ari: f64,
}

/// Sweep result.
pub struct E8Result {
    /// Blocks k.
    pub blocks: usize,
    /// Vertices per block.
    pub block_size: usize,
    /// One row per ε.
    pub rows: Vec<E8Row>,
}

impl E8Result {
    /// Renders a table.
    pub fn table(&self) -> String {
        let mut out = format!(
            "planted partition: {} blocks × {} vertices\n",
            self.blocks, self.block_size
        );
        out.push_str("epsilon   leakage   min block conductance      ARI\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:>7.3} {:>9.4} {:>23.3} {:>8.4}\n",
                r.epsilon, r.measured_leakage, r.min_block_conductance, r.ari
            ));
        }
        out
    }
}

/// Runs the leakage sweep.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
pub fn run(blocks: usize, block_size: usize, epsilons: &[f64], seed: u64) -> E8Result {
    let rows = epsilons
        .iter()
        .map(|&eps| {
            let mut gen_rng = seeded(seed ^ (eps.to_bits() >> 1));
            let planted = PlantedPartition::generate(
                PlantedConfig {
                    blocks,
                    block_size,
                    p_intra: 0.85,
                    epsilon: eps,
                },
                &mut gen_rng,
            );
            let mut part_rng = seeded(seed.wrapping_add(17));
            let labels = spectral_partition(&planted.graph, blocks, &mut part_rng)
                .expect("k <= n for planted graphs");
            E8Row {
                epsilon: eps,
                measured_leakage: planted.measured_leakage(),
                min_block_conductance: planted.min_block_conductance().unwrap_or(f64::NAN),
                ari: adjusted_rand_index(&labels, &planted.labels),
            }
        })
        .collect();
    E8Result {
        blocks,
        block_size,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_leakage_recovers_exactly() {
        let r = run(4, 10, &[0.0, 0.05], 41);
        assert!(r.rows[0].ari > 0.999, "ARI at eps=0: {}", r.rows[0].ari);
        assert!(r.rows[1].ari > 0.9, "ARI at eps=0.05: {}", r.rows[1].ari);
        assert!(r.rows[0].min_block_conductance > 1.0);
    }

    #[test]
    fn heavy_leakage_degrades() {
        let r = run(3, 10, &[0.02, 3.0], 43);
        assert!(
            r.rows[1].ari < r.rows[0].ari,
            "no degradation: {} vs {}",
            r.rows[0].ari,
            r.rows[1].ari
        );
    }

    #[test]
    fn table_renders() {
        let r = run(2, 6, &[0.1], 5);
        assert!(r.table().contains("ARI"));
    }
}
