//! E13 — the paper's other open question (Section 6): "does LSI address
//! polysemy?"
//!
//! Setup: a polysemous term (think "surfing") sits in the primary
//! vocabulary of **two** topics (internet, ocean). A one-word query on it
//! is inherently ambiguous. We measure whether adding a single context term
//! disambiguates better in LSI space than in raw term space — the retrieval
//! form of polysemy handling — and where LSI places the polysemous term
//! relative to the two topic directions.

use lsi_core::{LsiConfig, LsiIndex};
use lsi_corpus::{CorpusModel, DocumentLaw, Topic};
use lsi_ir::eval::{average_precision, Judgments};
use lsi_ir::{TermDocumentMatrix, VectorSpaceIndex, Weighting};
use lsi_linalg::rng::seeded;
use lsi_linalg::vector;

/// The polysemous term's id in the generated universe.
pub const POLY: usize = 0;

/// Result of the polysemy experiment.
#[derive(Debug, Clone)]
pub struct E13Result {
    /// AP of the ambiguous one-word query, raw VSM (relevance = topic 0).
    pub ambiguous_vsm_ap: f64,
    /// AP of the ambiguous one-word query, LSI.
    pub ambiguous_lsi_ap: f64,
    /// AP of the disambiguated query (poly + context), raw VSM.
    pub disambiguated_vsm_ap: f64,
    /// AP of the disambiguated query (poly + context), LSI.
    pub disambiguated_lsi_ap: f64,
    /// Cosine between the polysemous term's LSI vector and topic 0's
    /// centroid direction.
    pub poly_cos_topic0: f64,
    /// Same against topic 1's centroid direction.
    pub poly_cos_topic1: f64,
}

impl E13Result {
    /// Renders the findings.
    pub fn table(&self) -> String {
        format!(
            "query             VSM AP    LSI AP\n\
             ambiguous        {:>7.3} {:>9.3}\n\
             + context term   {:>7.3} {:>9.3}\n\
             \n\
             polysemous term vs topic directions (LSI space):\n\
             cos(poly, topic0 centroid) = {:.3}\n\
             cos(poly, topic1 centroid) = {:.3}\n",
            self.ambiguous_vsm_ap,
            self.ambiguous_lsi_ap,
            self.disambiguated_vsm_ap,
            self.disambiguated_lsi_ap,
            self.poly_cos_topic0,
            self.poly_cos_topic1
        )
    }
}

/// Builds the polysemy corpus and measures both retrieval settings.
///
/// Universe layout: term 0 = the polysemous word, terms `1..=10` topic 0's
/// context, terms `11..=20` topic 1's context, plus slack terms.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
pub fn run(n_docs: usize, seed: u64) -> E13Result {
    let universe = 25;
    let mut w0 = vec![0.0; universe];
    w0[POLY] = 2.0;
    w0[1..=10].fill(1.0);
    let mut w1 = vec![0.0; universe];
    w1[POLY] = 2.0;
    w1[11..=20].fill(1.0);
    let t0 = Topic::from_weights("internet", &w0).expect("valid topic");
    let t1 = Topic::from_weights("ocean", &w1).expect("valid topic");

    let model = CorpusModel::new(
        universe,
        vec![t0, t1],
        Vec::new(),
        DocumentLaw::pure_uniform(30, 60),
    )
    .expect("valid model");

    let mut rng = seeded(seed);
    let corpus = model.sample_corpus(n_docs, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("fits");
    let labels = td.topic_labels().to_vec();
    let m = td.n_docs();

    let vsm = VectorSpaceIndex::build(&td.weighted(Weighting::Count));
    let lsi = LsiIndex::build(&td, LsiConfig::with_rank(2)).expect("feasible rank");

    let judgments = Judgments::new((0..m).filter(|&j| labels[j] == Some(0)));

    // Ambiguous query: the polysemous word alone.
    let ambiguous = vec![(POLY, 1.0)];
    let ambiguous_vsm_ap = average_precision(&vsm.query(&ambiguous, m).doc_ids(), &judgments);
    let ambiguous_lsi_ap = average_precision(&lsi.query(&ambiguous, m).doc_ids(), &judgments);

    // Disambiguated: add one topic-0 context term.
    let disambiguated = vec![(POLY, 1.0), (1usize, 1.0)];
    let disambiguated_vsm_ap =
        average_precision(&vsm.query(&disambiguated, m).doc_ids(), &judgments);
    let disambiguated_lsi_ap =
        average_precision(&lsi.query(&disambiguated, m).doc_ids(), &judgments);

    // Topic centroids in LSI space (mean of on-topic document vectors).
    let k = lsi.rank();
    let mut centroids = vec![vec![0.0; k]; 2];
    let mut counts = [0usize; 2];
    for (j, label) in labels.iter().enumerate() {
        if let Some(t) = *label {
            vector::axpy(1.0, lsi.doc_vector(j), &mut centroids[t]);
            counts[t] += 1;
        }
    }
    for (c, &n) in centroids.iter_mut().zip(&counts) {
        if n > 0 {
            vector::scale(1.0 / n as f64, c);
        }
    }
    let poly_vec = lsi.term_vector(POLY);

    E13Result {
        ambiguous_vsm_ap,
        ambiguous_lsi_ap,
        disambiguated_vsm_ap,
        disambiguated_lsi_ap,
        poly_cos_topic0: vector::cosine(&poly_vec, &centroids[0]),
        poly_cos_topic1: vector::cosine(&poly_vec, &centroids[1]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_disambiguates_better_in_lsi_space() {
        let r = run(200, 91);
        // The ambiguous query can't beat ~the topic prior for either
        // engine; with one context term LSI pulls decisively ahead.
        assert!(
            r.disambiguated_lsi_ap > r.ambiguous_lsi_ap + 0.1,
            "LSI gained little from context: {} -> {}",
            r.ambiguous_lsi_ap,
            r.disambiguated_lsi_ap
        );
        assert!(
            r.disambiguated_lsi_ap > r.disambiguated_vsm_ap,
            "LSI {} not ahead of VSM {}",
            r.disambiguated_lsi_ap,
            r.disambiguated_vsm_ap
        );
        assert!(r.disambiguated_lsi_ap > 0.85);
    }

    #[test]
    fn polysemous_term_sits_between_topics() {
        let r = run(200, 92);
        // The polysemous word is genuinely shared: positive affinity to
        // both topic directions.
        assert!(
            r.poly_cos_topic0 > 0.3 && r.poly_cos_topic1 > 0.3,
            "poly vs topics: {} / {}",
            r.poly_cos_topic0,
            r.poly_cos_topic1
        );
    }

    #[test]
    fn table_renders() {
        let r = run(100, 93);
        assert!(r.table().contains("ambiguous"));
    }
}
