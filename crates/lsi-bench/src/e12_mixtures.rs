//! E12 — the paper's open question (Section 6): "Can Theorem 2 be extended
//! to a model where documents could belong to several topics?"
//!
//! We measure it empirically: sample corpora whose documents mix `j`
//! topics, and correlate the LSI-space cosine of each document pair with
//! the ground-truth overlap of their topic-weight vectors. For pure corpora
//! (`j = 1`) the correlation is nearly perfect (Theorem 2's regime); the
//! sweep shows how gracefully it degrades as documents blend topics.

use lsi_core::{LsiConfig, LsiIndex};
use lsi_corpus::model::StyleMode;
use lsi_corpus::{CorpusModel, DocumentLaw, LengthLaw, SeparableConfig, SeparableModel};
use lsi_ir::TermDocumentMatrix;
use lsi_linalg::rng::seeded;
use lsi_linalg::vector;

/// One row of the topics-per-document sweep.
#[derive(Debug, Clone, Copy)]
pub struct E12Row {
    /// Topics mixed per document.
    pub topics_per_doc: usize,
    /// Pearson correlation between pairwise LSI cosine and ground-truth
    /// topic-weight cosine.
    pub correlation: f64,
    /// Number of document pairs measured.
    pub pairs: usize,
}

/// Sweep result.
pub struct E12Result {
    /// One row per mixing level.
    pub rows: Vec<E12Row>,
}

impl E12Result {
    /// Renders a table.
    pub fn table(&self) -> String {
        let mut out = String::from("topics/doc   corr(LSI cos, truth cos)    pairs\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:>10} {:>26.4} {:>8}\n",
                r.topics_per_doc, r.correlation, r.pairs
            ));
        }
        out
    }
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Runs the sweep over mixing levels on a fixed topic/term geometry.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
pub fn run(mixes: &[usize], n_docs: usize, seed: u64) -> E12Result {
    let k = 6;
    // Reuse the separable topic shapes but with a custom document law.
    let base = SeparableModel::build(SeparableConfig {
        universe_size: k * 30,
        num_topics: k,
        primary_terms_per_topic: 30,
        epsilon: 0.03,
        min_doc_len: 60,
        max_doc_len: 100,
    })
    .expect("valid base model");

    let rows = mixes
        .iter()
        .filter(|&&j| j >= 1 && j <= k)
        .map(|&j| {
            let model = CorpusModel::new(
                base.model().universe_size(),
                base.model().topics().to_vec(),
                Vec::new(),
                DocumentLaw {
                    topics_per_doc: j,
                    style_mode: StyleMode::Identity,
                    length: LengthLaw::Uniform { min: 60, max: 100 },
                },
            )
            .expect("valid mixture model");

            let mut rng = seeded(seed.wrapping_add(j as u64));
            let (corpus, specs) = model.sample_corpus_with_specs(n_docs, &mut rng);
            let td = TermDocumentMatrix::from_generated(&corpus).expect("fits");
            let index = LsiIndex::build(&td, LsiConfig::with_rank(k)).expect("feasible");

            let truth: Vec<Vec<f64>> = specs.iter().map(|s| s.topic_weight_vector(k)).collect();

            let mut lsi_cos = Vec::new();
            let mut truth_cos = Vec::new();
            for a in 0..n_docs {
                for b in a + 1..n_docs {
                    lsi_cos.push(index.doc_cosine(a, b));
                    truth_cos.push(vector::cosine(&truth[a], &truth[b]));
                }
            }

            E12Row {
                topics_per_doc: j,
                correlation: pearson(&lsi_cos, &truth_cos),
                pairs: lsi_cos.len(),
            }
        })
        .collect();
    E12Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_corpora_correlate_nearly_perfectly() {
        let r = run(&[1], 80, 81);
        assert!(
            r.rows[0].correlation > 0.95,
            "pure correlation {}",
            r.rows[0].correlation
        );
    }

    #[test]
    fn mixtures_remain_strongly_correlated() {
        let r = run(&[1, 2, 3], 80, 82);
        assert_eq!(r.rows.len(), 3);
        // LSI keeps tracking mixture overlap well beyond the pure case —
        // the empirical answer to the paper's open question is "yes,
        // gracefully".
        for row in &r.rows {
            assert!(
                row.correlation > 0.7,
                "j={}: correlation {}",
                row.topics_per_doc,
                row.correlation
            );
        }
    }

    #[test]
    fn pearson_sanity() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn table_renders() {
        let r = run(&[1], 30, 3);
        assert!(r.table().contains("topics/doc"));
    }
}
