//! E5 — Theorem 5: the two-step RP + LSI pipeline recovers almost as much
//! Frobenius mass as direct rank-k LSI:
//! `‖A − B₂ₖ‖²_F ≤ ‖A − A_k‖²_F + 2ε‖A‖²_F`.

use lsi_linalg::lanczos::{lanczos_svd, LanczosOptions};
use lsi_linalg::LinearOperator;
use lsi_rp::{two_step_lsi, ProjectionKind};

use crate::common::scaled_corpus;

/// One row of the `l` sweep.
#[derive(Debug, Clone, Copy)]
pub struct E5Row {
    /// Projection dimension.
    pub l: usize,
    /// `‖A − B₂ₖ‖²_F / ‖A‖²_F`.
    pub two_step_error_frac: f64,
    /// Theorem 5's excess `(‖A − B₂ₖ‖² − ‖A − A_k‖²) / ‖A‖²` (≤ 2ε).
    pub excess_frac: f64,
}

/// Sweep result.
pub struct E5Result {
    /// Direct rank-k error fraction `‖A − A_k‖²_F / ‖A‖²_F`.
    pub direct_error_frac: f64,
    /// Rank k used.
    pub k: usize,
    /// One row per `l`.
    pub rows: Vec<E5Row>,
}

impl E5Result {
    /// Renders a table.
    pub fn table(&self) -> String {
        let mut out = format!(
            "direct rank-{} LSI error fraction: {:.4}\n",
            self.k, self.direct_error_frac
        );
        out.push_str("    l   two-step err frac   excess over direct\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:>5} {:>19.4} {:>20.4}\n",
                r.l, r.two_step_error_frac, r.excess_frac
            ));
        }
        out
    }
}

/// `‖A − A_k‖²_F` from the exact top-k spectrum (via Lanczos — cheap and
/// accurate, no dense factorization needed).
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
pub fn direct_error_sq_lanczos(a: &lsi_linalg::CsrMatrix, k: usize) -> f64 {
    let f = lanczos_svd(a, k, &LanczosOptions::default()).expect("k <= min(m, n)");
    let head: f64 = f.singular_values.iter().map(|s| s * s).sum();
    (a.frobenius_sq() - head).max(0.0)
}

/// Runs the sweep at corpus `scale`; `k` defaults to the topic count.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
pub fn run(scale: f64, ls: &[usize], seed: u64) -> E5Result {
    let exp = scaled_corpus(scale, 0.05, seed);
    let a = exp.td.counts();
    let k = exp.model.config().num_topics;
    let total = a.frobenius_sq();
    let direct = direct_error_sq_lanczos(a, k);

    let rows = ls
        .iter()
        .filter(|&&l| 2 * k <= l && l <= a.nrows())
        .map(|&l| {
            let r = two_step_lsi(a, k, l, ProjectionKind::OrthonormalSubspace, seed ^ 0x5a5a)
                .expect("validated dimensions");
            E5Row {
                l,
                two_step_error_frac: r.error_sq / total,
                excess_frac: (r.error_sq - direct) / total,
            }
        })
        .collect();

    E5Result {
        direct_error_frac: direct / total,
        k,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excess_shrinks_with_l_and_is_small() {
        let r = run(0.2, &[16, 40, 80], 17);
        assert_eq!(r.rows.len(), 3);
        let first = r.rows[0].excess_frac;
        let last = r.rows[2].excess_frac;
        assert!(last <= first + 0.02, "excess grew: {first} -> {last}");
        // Theorem 5 shape: at generous l the excess is a small fraction.
        assert!(last < 0.1, "excess too large: {last}");
    }

    #[test]
    fn infeasible_l_filtered() {
        let r = run(0.1, &[1, 1_000_000], 3);
        assert!(r.rows.is_empty());
    }

    #[test]
    fn table_renders() {
        let r = run(0.15, &[20], 5);
        assert!(r.table().contains("two-step err frac"));
    }
}
