//! E2 — δ-skew as a function of the separability ε (Theorems 2 and 3).
//!
//! Theorem 2: at ε = 0 the rank-k LSI is 0-skewed (with high probability).
//! Theorem 3: at ε > 0 it is O(ε)-skewed. The sweep measures δ at a range
//! of ε values and reports the ratio δ/ε to expose the linear shape.

use lsi_core::skew::measure_skew;
use lsi_core::{LsiConfig, LsiIndex};

use crate::common::scaled_corpus;

/// One row of the ε sweep.
#[derive(Debug, Clone, Copy)]
pub struct E2Row {
    /// Model separability ε.
    pub epsilon: f64,
    /// Measured skew δ of the rank-k LSI representation.
    pub delta: f64,
    /// Largest intertopic cosine.
    pub max_intertopic_cos: f64,
    /// Smallest intratopic cosine.
    pub min_intratopic_cos: f64,
}

/// Sweep result.
pub struct E2Result {
    /// One row per ε.
    pub rows: Vec<E2Row>,
}

impl E2Result {
    /// Renders a table.
    pub fn table(&self) -> String {
        let mut out =
            String::from("epsilon      delta   max intertopic cos   min intratopic cos\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:>7.3} {:>10.4} {:>20.4} {:>20.4}\n",
                r.epsilon, r.delta, r.max_intertopic_cos, r.min_intratopic_cos
            ));
        }
        out
    }
}

/// Runs the sweep at corpus `scale` over the given ε values.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
pub fn run(scale: f64, epsilons: &[f64], seed: u64) -> E2Result {
    let rows = epsilons
        .iter()
        .map(|&eps| {
            let exp = scaled_corpus(scale, eps, seed);
            let rank = exp.model.config().num_topics;
            let index = LsiIndex::build(&exp.td, LsiConfig::with_rank(rank))
                .expect("experiment corpus admits rank = #topics");
            let skew = measure_skew(index.doc_representations(), exp.td.topic_labels())
                .expect("experiment corpora have >= 2 labeled docs");
            E2Row {
                epsilon: eps,
                delta: skew.delta,
                max_intertopic_cos: skew.max_intertopic_cos,
                min_intratopic_cos: skew.min_intratopic_cos,
            }
        })
        .collect();
    E2Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_grows_with_epsilon_and_stays_small() {
        let r = run(0.15, &[0.0, 0.1, 0.3], 11);
        assert_eq!(r.rows.len(), 3);
        // δ(0) should be small (Theorem 2's 0-skew, finite-sample fuzz
        // allowed), and the trend increasing.
        assert!(
            r.rows[0].delta < 0.25,
            "delta at eps=0: {}",
            r.rows[0].delta
        );
        assert!(
            r.rows[2].delta > r.rows[0].delta,
            "no growth: {} vs {}",
            r.rows[2].delta,
            r.rows[0].delta
        );
    }

    #[test]
    fn table_renders() {
        let r = run(0.1, &[0.05], 3);
        assert!(r.table().contains("epsilon"));
    }
}
