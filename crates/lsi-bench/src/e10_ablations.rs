//! E10 — ablations of the design choices this reproduction introduces
//! (none of which the paper fixes): the truncated-SVD backend, the random
//! projection ensemble, and the term-weighting scheme.

use lsi_core::skew::measure_skew;
use lsi_core::{LsiConfig, LsiIndex, SvdBackend};
use lsi_ir::Weighting;
use lsi_linalg::randomized::RandomizedSvdOptions;
use lsi_linalg::Matrix;
use lsi_rp::{measure_distortion, ProjectionKind, RandomProjection};

use crate::common::{scaled_corpus, time_secs, ExperimentCorpus};

/// Backend comparison row.
#[derive(Debug, Clone)]
pub struct BackendRow {
    /// Backend name.
    pub backend: &'static str,
    /// Build seconds.
    pub secs: f64,
    /// Max relative deviation of its singular values from the dense truth.
    pub sigma_rel_err: f64,
}

/// Projection ensemble comparison row.
#[derive(Debug, Clone)]
pub struct ProjectionRow {
    /// Ensemble name.
    pub kind: &'static str,
    /// Max pairwise distance distortion at the fixed `l`.
    pub max_distortion: f64,
}

/// Weighting comparison row.
#[derive(Debug, Clone)]
pub struct WeightingRow {
    /// Scheme name.
    pub weighting: &'static str,
    /// Measured δ-skew of rank-k LSI under this weighting.
    pub delta: f64,
}

/// Full ablation result.
pub struct E10Result {
    /// SVD backend comparison.
    pub backends: Vec<BackendRow>,
    /// Projection ensemble comparison.
    pub projections: Vec<ProjectionRow>,
    /// Weighting scheme comparison.
    pub weightings: Vec<WeightingRow>,
}

impl E10Result {
    /// Renders all three tables.
    pub fn table(&self) -> String {
        let mut out = String::from("SVD backend          secs   max σ rel err\n");
        for b in &self.backends {
            out.push_str(&format!(
                "{:<16} {:>8.4} {:>15.2e}\n",
                b.backend, b.secs, b.sigma_rel_err
            ));
        }
        out.push_str("\nprojection kind   max distance distortion\n");
        for p in &self.projections {
            out.push_str(&format!("{:<16} {:>24.4}\n", p.kind, p.max_distortion));
        }
        out.push_str("\nweighting          delta-skew\n");
        for w in &self.weightings {
            out.push_str(&format!("{:<16} {:>12.4}\n", w.weighting, w.delta));
        }
        out
    }
}

///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
fn backend_rows(exp: &ExperimentCorpus, k: usize, seed: u64) -> Vec<BackendRow> {
    let configs: Vec<(&'static str, SvdBackend)> = vec![
        ("dense", SvdBackend::Dense),
        ("lanczos", SvdBackend::default()),
        (
            "randomized",
            SvdBackend::Randomized(RandomizedSvdOptions {
                seed,
                ..RandomizedSvdOptions::default()
            }),
        ),
    ];
    // The dense backend runs first in `configs`; its (timed) output doubles
    // as the accuracy truth for the other backends — no second full SVD.
    let mut truth: Vec<f64> = Vec::new();

    configs
        .into_iter()
        .map(|(name, backend)| {
            let (index, secs) = time_secs(|| {
                LsiIndex::build(
                    &exp.td,
                    LsiConfig {
                        rank: k,
                        weighting: Weighting::Count,
                        backend,
                    },
                )
                .expect("rank feasible")
            });
            if truth.is_empty() {
                truth = index.singular_values().to_vec();
            }
            let rel_err = index
                .singular_values()
                .iter()
                .zip(&truth)
                .map(|(got, want)| (got - want).abs() / want.max(f64::MIN_POSITIVE))
                .fold(0.0, f64::max);
            BackendRow {
                backend: name,
                secs,
                sigma_rel_err: rel_err,
            }
        })
        .collect()
}

///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
fn projection_rows(exp: &ExperimentCorpus, l: usize, seed: u64) -> Vec<ProjectionRow> {
    let n = exp.td.n_terms();
    let m = exp.td.n_docs().min(60);
    let dense = exp.td.to_dense();
    let original = Matrix::from_fn(n, m, |i, j| dense[(i, j)]);
    let sparse = lsi_linalg::CsrMatrix::from_dense(&original, 0.0);

    ProjectionKind::ALL
        .iter()
        .map(|&kind| {
            let p = RandomProjection::new(kind, n, l, seed).expect("l <= n");
            let projected = p.project_columns(&sparse).expect("dimensions agree");
            let rep = measure_distortion(&original, &projected).expect("distinct docs");
            ProjectionRow {
                kind: kind.name(),
                max_distortion: rep.max_distance_distortion,
            }
        })
        .collect()
}

///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
fn weighting_rows(exp: &ExperimentCorpus, k: usize) -> Vec<WeightingRow> {
    Weighting::ALL
        .iter()
        .map(|&w| {
            let index = LsiIndex::build(
                &exp.td,
                LsiConfig {
                    rank: k,
                    weighting: w,
                    backend: SvdBackend::default(),
                },
            )
            .expect("rank feasible");
            let skew = measure_skew(index.doc_representations(), exp.td.topic_labels())
                .expect("enough docs");
            WeightingRow {
                weighting: w.name(),
                delta: skew.delta,
            }
        })
        .collect()
}

/// Runs all three ablations on a corpus at the given scale.
pub fn run(scale: f64, seed: u64) -> E10Result {
    let exp = scaled_corpus(scale, 0.05, seed);
    let k = exp.model.config().num_topics;
    let l = (4 * k).min(exp.td.n_terms());

    E10Result {
        backends: backend_rows(&exp, k, seed),
        projections: projection_rows(&exp, l, seed ^ 0xf00d),
        weightings: weighting_rows(&exp, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_with_dense_truth() {
        let r = run(0.12, 61);
        assert_eq!(r.backends.len(), 3);
        for b in &r.backends {
            // Lanczos should be essentially exact; randomized within 1%.
            let cap = if b.backend == "randomized" {
                1e-2
            } else {
                1e-6
            };
            assert!(
                b.sigma_rel_err < cap,
                "{}: rel err {}",
                b.backend,
                b.sigma_rel_err
            );
        }
    }

    #[test]
    fn weighting_affects_but_does_not_break_skew() {
        let r = run(0.12, 62);
        // Section 2's claim ("the precise choice does not affect our
        // results") concerns the theorems' validity, not the worst-pair
        // constant: binary weighting amplifies the uniform leakage terms,
        // so its δ is visibly larger — but every scheme stays a valid,
        // non-degenerate skew, and the default count weighting stays small.
        for w in &r.weightings {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&w.delta),
                "{}: delta {}",
                w.weighting,
                w.delta
            );
        }
        let count = r
            .weightings
            .iter()
            .find(|w| w.weighting == "count")
            .expect("count scheme present");
        assert!(count.delta < 0.5, "count delta {}", count.delta);
    }

    #[test]
    fn all_projection_kinds_measured() {
        let r = run(0.1, 63);
        assert_eq!(r.projections.len(), 4);
        for p in &r.projections {
            assert!(p.max_distortion.is_finite());
        }
    }

    #[test]
    fn table_renders() {
        let r = run(0.1, 64);
        let t = r.table();
        assert!(t.contains("SVD backend"));
        assert!(t.contains("projection kind"));
        assert!(t.contains("weighting"));
    }
}
