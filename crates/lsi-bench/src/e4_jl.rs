//! E4 — empirical Johnson–Lindenstrauss (Lemma 2): distance and
//! inner-product distortion of random projections as the target dimension
//! `l` grows, compared against the `O(√(log m / l))` prediction.

use lsi_linalg::Matrix;
use lsi_rp::{measure_distortion, DistortionReport, ProjectionKind, RandomProjection};

use crate::common::scaled_corpus;

/// One row of the `l` sweep.
#[derive(Debug, Clone, Copy)]
pub struct E4Row {
    /// Projection dimension.
    pub l: usize,
    /// Measured distortion.
    pub report: DistortionReport,
    /// The `√(ln m / l)` prediction (up to a constant).
    pub predicted_scale: f64,
}

/// Sweep result.
pub struct E4Result {
    /// One row per `l`.
    pub rows: Vec<E4Row>,
    /// Number of document vectors measured.
    pub n_points: usize,
}

impl E4Result {
    /// Renders a table.
    pub fn table(&self) -> String {
        let mut out = format!(
            "JL distortion over {} documents (pairs per row: {})\n",
            self.n_points,
            self.rows.first().map_or(0, |r| r.report.pairs)
        );
        out.push_str("    l   max dist    mean dist   max ip err   ~sqrt(ln m / l)\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:>5} {:>10.4} {:>12.4} {:>12.4} {:>17.4}\n",
                r.l,
                r.report.max_distance_distortion,
                r.report.mean_distance_distortion,
                r.report.max_inner_product_error,
                r.predicted_scale
            ));
        }
        out
    }
}

/// Runs the sweep: projects the first `n_points` document columns of a
/// scaled corpus to each `l` and measures pairwise distortion.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
pub fn run(scale: f64, ls: &[usize], n_points: usize, seed: u64) -> E4Result {
    let exp = scaled_corpus(scale, 0.05, seed);
    let n = exp.td.n_terms();
    let m = exp.td.n_docs().min(n_points);

    // Original document vectors (columns) restricted to the first m docs.
    let dense = exp.td.to_dense();
    let original = Matrix::from_fn(n, m, |i, j| dense[(i, j)]);
    let sparse = lsi_linalg::CsrMatrix::from_dense(&original, 0.0);

    let rows = ls
        .iter()
        .filter(|&&l| l <= n)
        .map(|&l| {
            let p = RandomProjection::new(ProjectionKind::OrthonormalSubspace, n, l, seed ^ 0xabc)
                .expect("l <= n by filter");
            let projected = p.project_columns(&sparse).expect("dimensions agree");
            let report =
                measure_distortion(&original, &projected).expect("distinct documents exist");
            E4Row {
                l,
                report,
                predicted_scale: ((m.max(2) as f64).ln() / l as f64).sqrt(),
            }
        })
        .collect();

    E4Result { rows, n_points: m }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distortion_shrinks_with_l() {
        let r = run(0.3, &[8, 64], 40, 13);
        assert_eq!(r.rows.len(), 2);
        let d_small = r.rows[0].report.max_distance_distortion;
        let d_large = r.rows[1].report.max_distance_distortion;
        assert!(
            d_large < d_small,
            "distortion should shrink: l=8 {d_small} vs l=64 {d_large}"
        );
        // And track the predicted scale within a small constant factor.
        assert!(d_large < 4.0 * r.rows[1].predicted_scale);
    }

    #[test]
    fn oversized_l_filtered() {
        let r = run(0.1, &[10, 100_000], 20, 1);
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn table_renders() {
        let r = run(0.1, &[10], 15, 2);
        assert!(r.table().contains("max dist"));
    }
}
