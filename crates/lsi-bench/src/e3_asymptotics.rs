//! E3 — the asymptotics behind Theorem 2: skew shrinks as documents get
//! longer and the corpus gets larger ("with probability 1 − O(m⁻¹)…
//! assuming that the length of each document in the corpus is large
//! enough").

use lsi_core::skew::measure_skew;
use lsi_core::{LsiConfig, LsiIndex};
use lsi_corpus::SeparableConfig;

use crate::common::make_corpus;

/// One measurement point.
#[derive(Debug, Clone, Copy)]
pub struct E3Row {
    /// Number of documents m.
    pub n_docs: usize,
    /// Document length (fixed per point).
    pub doc_len: usize,
    /// Measured δ-skew.
    pub delta: f64,
}

/// Sweep result: a document-length sweep and a corpus-size sweep.
pub struct E3Result {
    /// δ at varying document length (fixed m).
    pub length_sweep: Vec<E3Row>,
    /// δ at varying corpus size (fixed length).
    pub size_sweep: Vec<E3Row>,
}

impl E3Result {
    /// Renders both sweeps.
    pub fn table(&self) -> String {
        let mut out = String::from("doc length sweep (m fixed):\n  len      delta\n");
        for r in &self.length_sweep {
            out.push_str(&format!("{:>5} {:>10.4}\n", r.doc_len, r.delta));
        }
        out.push_str("corpus size sweep (length fixed):\n    m      delta\n");
        for r in &self.size_sweep {
            out.push_str(&format!("{:>5} {:>10.4}\n", r.n_docs, r.delta));
        }
        out
    }
}

///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
fn measure(topics: usize, terms_per_topic: usize, m: usize, len: usize, seed: u64) -> E3Row {
    let config = SeparableConfig {
        universe_size: topics * terms_per_topic,
        num_topics: topics,
        primary_terms_per_topic: terms_per_topic,
        epsilon: 0.05,
        min_doc_len: len,
        max_doc_len: len,
    };
    let exp = make_corpus(config, m, seed);
    let index = LsiIndex::build(&exp.td, LsiConfig::with_rank(topics))
        .expect("experiment corpus admits rank = #topics");
    let skew = measure_skew(index.doc_representations(), exp.td.topic_labels())
        .expect("enough labeled documents");
    E3Row {
        n_docs: m,
        doc_len: len,
        delta: skew.delta,
    }
}

/// Runs both sweeps at a given base size.
pub fn run(doc_lens: &[usize], corpus_sizes: &[usize], seed: u64) -> E3Result {
    let topics = 4;
    let terms = 25;
    let length_sweep = doc_lens
        .iter()
        .map(|&len| measure(topics, terms, 150, len, seed))
        .collect();
    let size_sweep = corpus_sizes
        .iter()
        .map(|&m| measure(topics, terms, m, 60, seed.wrapping_add(1)))
        .collect();
    E3Result {
        length_sweep,
        size_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_documents_reduce_skew() {
        let r = run(&[10, 200], &[100], 5);
        let short = r.length_sweep[0].delta;
        let long = r.length_sweep[1].delta;
        assert!(
            long < short,
            "longer docs should reduce skew: {short} -> {long}"
        );
    }

    #[test]
    fn table_renders() {
        let r = run(&[20], &[50], 2);
        assert!(r.table().contains("doc length sweep"));
        assert!(r.table().contains("corpus size sweep"));
    }
}
