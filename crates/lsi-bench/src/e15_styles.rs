//! E15 — styles as perturbation (Definition 3 meets Theorem 3).
//!
//! The theorems of Section 4 assume a style-free model and handle deviations
//! as a perturbation `F` with `‖F‖₂ ≤ ε`. Styles are exactly such a
//! deviation: a style that rewrites a topic's terms to *another topic's*
//! vocabulary with probability `p` perturbs the block structure by an
//! amount growing with `p`. The sweep measures δ-skew as the rewrite
//! probability grows — the empirical counterpart of Theorem 3 with a
//! style-induced `F`.

use lsi_core::skew::measure_skew;
use lsi_core::{LsiConfig, LsiIndex};
use lsi_corpus::model::StyleMode;
use lsi_corpus::{CorpusModel, DocumentLaw, LengthLaw, SeparableConfig, SeparableModel, Style};
use lsi_ir::TermDocumentMatrix;
use lsi_linalg::rng::seeded;

/// One row of the style-strength sweep.
#[derive(Debug, Clone, Copy)]
pub struct E15Row {
    /// Cross-topic rewrite probability of the perturbing style.
    pub rewrite_prob: f64,
    /// Measured δ-skew of the rank-k LSI.
    pub delta: f64,
}

/// Sweep result.
pub struct E15Result {
    /// One row per rewrite probability.
    pub rows: Vec<E15Row>,
}

impl E15Result {
    /// Renders a table.
    pub fn table(&self) -> String {
        let mut out = String::from("style rewrite prob      delta\n");
        for r in &self.rows {
            out.push_str(&format!("{:>18.3} {:>10.4}\n", r.rewrite_prob, r.delta));
        }
        out
    }
}

/// Runs the sweep: a 0-separable base model whose only ε comes from a style
/// rewriting the first few terms of each topic into the *next* topic's
/// vocabulary with probability `p`.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
pub fn run(scale_topics: usize, probs: &[f64], seed: u64) -> E15Result {
    let k = scale_topics;
    let s = 25;
    let base = SeparableModel::build(SeparableConfig {
        universe_size: k * s,
        num_topics: k,
        primary_terms_per_topic: s,
        epsilon: 0.0,
        min_doc_len: 60,
        max_doc_len: 100,
    })
    .expect("valid base");

    let rows = probs
        .iter()
        .map(|&p| {
            // Style: the first 5 terms of each topic's primary set rewrite
            // into the corresponding terms of the next topic with prob p.
            let universe = k * s;
            let pairs: Vec<(usize, usize, f64)> = (0..k)
                .flat_map(|topic| {
                    let next = (topic + 1) % k;
                    (0..5).map(move |off| (topic * s + off, next * s + off, p))
                })
                .collect();
            let style = Style::substitutions("cross-topic", universe, &pairs).expect("valid style");

            // Half the authors write plainly, half through the rewriting
            // style. The *disagreement* between the two populations is what
            // perturbs the block structure — a single style applied to
            // everyone would merely relabel vocabulary and leave the blocks
            // perfectly separated.
            let model = CorpusModel::new(
                universe,
                base.model().topics().to_vec(),
                vec![Style::identity(universe), style],
                DocumentLaw {
                    topics_per_doc: 1,
                    style_mode: if p > 0.0 {
                        StyleMode::RandomSingle
                    } else {
                        StyleMode::Identity
                    },
                    length: LengthLaw::Uniform { min: 60, max: 100 },
                },
            )
            .expect("valid styled model");

            let mut rng = seeded(seed.wrapping_add((p * 1000.0) as u64));
            let corpus = model.sample_corpus(160, &mut rng);
            let td = TermDocumentMatrix::from_generated(&corpus).expect("fits");
            let index = LsiIndex::build(&td, LsiConfig::with_rank(k)).expect("feasible");
            let skew =
                measure_skew(index.doc_representations(), td.topic_labels()).expect("enough docs");
            E15Row {
                rewrite_prob: p,
                delta: skew.delta,
            }
        })
        .collect();
    E15Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn style_perturbation_grows_skew_smoothly() {
        let r = run(4, &[0.0, 0.3, 0.9], 111);
        assert_eq!(r.rows.len(), 3);
        // Style-free: essentially 0-skewed (Theorem 2).
        assert!(r.rows[0].delta < 0.1, "delta at p=0: {}", r.rows[0].delta);
        // Perturbation raises skew monotonically but does not destroy the
        // structure at moderate strengths (Theorem 3's O(ε) robustness).
        assert!(r.rows[1].delta > r.rows[0].delta);
        assert!(r.rows[2].delta > r.rows[1].delta - 0.05);
        assert!(r.rows[1].delta < 0.6, "delta at p=0.3: {}", r.rows[1].delta);
    }

    #[test]
    fn table_renders() {
        let r = run(3, &[0.1], 7);
        assert!(r.table().contains("rewrite prob"));
    }
}
