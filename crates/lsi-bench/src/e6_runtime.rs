//! E6 — the running-time claim of Section 5: two-step RP + LSI costs
//! `O(m l (l + c))` against direct LSI's `O(m n c)`, so its advantage grows
//! with the vocabulary size `n`.
//!
//! Three timings per vocabulary size:
//!
//! * **dense LSI** — full Golub–Reinsch SVD then truncate. Its cost scales
//!   with `n`, matching the paper's `O(mnc)` cost model for "the time to
//!   compute LSI" in 1998; this is the baseline Theorem 5's speedup is
//!   stated against.
//! * **Lanczos LSI** — our truncated sparse solver; a *modern* baseline the
//!   paper did not have. Its cost is `O(k · nnz)`-ish, already close to the
//!   two-step's — which is historically exactly what happened: iterative
//!   truncated solvers absorbed much of the advantage random projection
//!   promised over full decompositions.
//! * **two-step** — projection `O(nnz · l)` plus a small dense SVD
//!   `O(m l²)`.

use lsi_corpus::SeparableConfig;
use lsi_linalg::lanczos::{lanczos_svd, LanczosOptions};
use lsi_linalg::svd::svd;
use lsi_rp::{two_step_lsi, ProjectionKind};

use crate::common::{make_corpus, time_secs};

/// One row of the vocabulary-size sweep.
#[derive(Debug, Clone, Copy)]
pub struct E6Row {
    /// Vocabulary size n.
    pub n_terms: usize,
    /// Documents m.
    pub n_docs: usize,
    /// Seconds for dense-SVD LSI (the paper's O(mnc)-scaling baseline);
    /// `None` if skipped for size.
    pub dense_secs: Option<f64>,
    /// Seconds for direct rank-k Lanczos LSI on the sparse matrix.
    pub lanczos_secs: f64,
    /// Seconds for the two-step pipeline (projection + small SVD).
    pub two_step_secs: f64,
}

impl E6Row {
    /// Dense LSI time over two-step time (the paper's claimed speedup).
    pub fn speedup_vs_dense(&self) -> Option<f64> {
        self.dense_secs.map(|d| {
            if self.two_step_secs > 0.0 {
                d / self.two_step_secs
            } else {
                f64::INFINITY
            }
        })
    }
}

/// Sweep result.
pub struct E6Result {
    /// One row per vocabulary size.
    pub rows: Vec<E6Row>,
    /// Rank k.
    pub k: usize,
    /// Projection dimension l.
    pub l: usize,
}

impl E6Result {
    /// Renders a table.
    pub fn table(&self) -> String {
        let mut out = format!("k = {}, l = {}\n", self.k, self.l);
        out.push_str(
            "      n      m   dense (s)   lanczos (s)   two-step (s)   speedup vs dense\n",
        );
        for r in &self.rows {
            let dense = r
                .dense_secs
                .map_or("      -".to_owned(), |d| format!("{d:>9.4}"));
            let speedup = r
                .speedup_vs_dense()
                .map_or("       -".to_owned(), |s| format!("{s:>8.2}"));
            out.push_str(&format!(
                "{:>7} {:>6} {} {:>13.4} {:>14.4} {}\n",
                r.n_terms, r.n_docs, dense, r.lanczos_secs, r.two_step_secs, speedup
            ));
        }
        out.push_str(
            "(lanczos is a modern truncated solver the paper predates; the paper's\n\
             O(mnc) LSI cost model corresponds to the dense column)\n",
        );
        out
    }
}

/// Runs the sweep over vocabulary sizes (documents and topics fixed).
/// Dense timing is skipped when `n * m^2` exceeds `dense_flop_cap`.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
pub fn run(
    term_sizes: &[usize],
    n_docs: usize,
    k: usize,
    l: usize,
    dense_flop_cap: usize,
    seed: u64,
) -> E6Result {
    let rows = term_sizes
        .iter()
        .map(|&n| {
            let config = SeparableConfig {
                universe_size: n,
                num_topics: k,
                primary_terms_per_topic: n / k,
                epsilon: 0.05,
                min_doc_len: 50,
                max_doc_len: 100,
            };
            let exp = make_corpus(config, n_docs, seed);
            let a = exp.td.counts();

            let dense_secs = if n * n_docs * n_docs <= dense_flop_cap {
                let dense_matrix = a.to_dense_matrix();
                let (_, secs) = time_secs(|| {
                    svd(&dense_matrix)
                        .expect("finite matrix")
                        .truncate(k)
                        .expect("k feasible")
                });
                Some(secs)
            } else {
                None
            };

            let (_, lanczos_secs) =
                time_secs(|| lanczos_svd(a, k, &LanczosOptions::default()).expect("valid rank"));
            let (_, two_step_secs) = time_secs(|| {
                two_step_lsi(a, k, l, ProjectionKind::OrthonormalSubspace, seed ^ 0xc0de)
                    .expect("valid dimensions")
            });

            E6Row {
                n_terms: n,
                n_docs,
                dense_secs,
                lanczos_secs,
                two_step_secs,
            }
        })
        .collect();
    E6Result { rows, k, l }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_timings() {
        let r = run(&[200, 400], 60, 4, 20, usize::MAX, 23);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert!(row.dense_secs.unwrap() > 0.0);
            assert!(row.lanczos_secs > 0.0);
            assert!(row.two_step_secs > 0.0);
            assert!(row.speedup_vs_dense().unwrap() > 0.0);
        }
    }

    #[test]
    fn dense_skipped_beyond_cap() {
        let r = run(&[150], 40, 3, 12, 1, 3);
        assert!(r.rows[0].dense_secs.is_none());
        assert!(r.rows[0].speedup_vs_dense().is_none());
    }

    #[test]
    fn table_renders() {
        let r = run(&[150], 40, 3, 12, usize::MAX, 3);
        assert!(r.table().contains("speedup"));
    }
}
