//! E9 — Theorem 1 (Eckart–Young), the paper's anchor for why LSI "retains
//! as much as possible the relative position of the document vectors":
//! `A_k` minimizes `‖A − C‖_F` over all matrices `C` of rank ≤ k. The
//! experiment pits `A_k` against families of rank-k competitors.

use lsi_linalg::norms::frobenius;
use lsi_linalg::rng::{gaussian_matrix, seeded};
use lsi_linalg::svd::svd;
use lsi_linalg::Matrix;

use crate::common::scaled_corpus;

/// Outcome for one input matrix.
#[derive(Debug, Clone)]
pub struct E9Case {
    /// Label of the input matrix.
    pub name: String,
    /// `‖A − A_k‖_F` — the optimum.
    pub optimal_error: f64,
    /// Smallest competitor error observed (must be ≥ optimal).
    pub best_competitor_error: f64,
    /// Number of competitors tried.
    pub competitors: usize,
}

/// Result over all cases.
pub struct E9Result {
    /// Truncation rank.
    pub k: usize,
    /// One entry per input matrix.
    pub cases: Vec<E9Case>,
}

impl E9Result {
    /// Renders a table.
    pub fn table(&self) -> String {
        let mut out = format!("rank k = {}\n", self.k);
        out.push_str("case                optimal ‖A-A_k‖   best of competitors   margin\n");
        for c in &self.cases {
            out.push_str(&format!(
                "{:<22} {:>14.4} {:>21.4} {:>8.4}\n",
                c.name,
                c.optimal_error,
                c.best_competitor_error,
                c.best_competitor_error - c.optimal_error
            ));
        }
        out
    }

    /// True when no competitor beat the truncated SVD anywhere.
    pub fn optimality_held(&self) -> bool {
        self.cases
            .iter()
            .all(|c| c.best_competitor_error >= c.optimal_error - 1e-9)
    }
}

///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
fn challenge(a: &Matrix, k: usize, n_competitors: usize, seed: u64, name: &str) -> E9Case {
    let f = svd(a).expect("finite input");
    let ak = f.low_rank_approx(k).expect("k <= rank bound");
    let optimal_error = frobenius(&a.sub(&ak).expect("same shape"));

    let mut rng = seeded(seed);
    let mut best = f64::INFINITY;
    for i in 0..n_competitors {
        let comp = if i % 2 == 0 {
            // Random rank-k matrix scaled to A's magnitude.
            let b = gaussian_matrix(&mut rng, a.nrows(), k);
            let c = gaussian_matrix(&mut rng, k, a.ncols());
            let raw = b.matmul(&c).expect("shapes agree");
            let norm = frobenius(&raw);
            if norm > 0.0 {
                raw.scaled(frobenius(a) / norm)
            } else {
                raw
            }
        } else {
            // Perturbation of the optimum — a much harder competitor.
            let noise = gaussian_matrix(&mut rng, a.nrows(), a.ncols())
                .scaled(0.01 * frobenius(a) / ((a.nrows() * a.ncols()) as f64).sqrt());
            let perturbed = ak.add(&noise).expect("same shape");
            // Re-truncate so the competitor honestly has rank ≤ k.
            svd(&perturbed)
                .expect("finite")
                .low_rank_approx(k)
                .expect("k feasible")
        };
        best = best.min(frobenius(&a.sub(&comp).expect("same shape")));
    }

    E9Case {
        name: name.to_owned(),
        optimal_error,
        best_competitor_error: best,
        competitors: n_competitors,
    }
}

/// Runs the challenge on a Gaussian matrix and a small corpus matrix.
pub fn run(k: usize, n_competitors: usize, seed: u64) -> E9Result {
    let mut rng = seeded(seed);
    let gauss = gaussian_matrix(&mut rng, 24, 18);
    let corpus = scaled_corpus(0.08, 0.05, seed).td.to_dense();

    let cases = vec![
        challenge(&gauss, k, n_competitors, seed ^ 1, "gaussian 24x18"),
        challenge(&corpus, k, n_competitors, seed ^ 2, "corpus matrix"),
    ];
    E9Result { k, cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_svd_is_never_beaten() {
        let r = run(3, 20, 51);
        assert!(r.optimality_held(), "{}", r.table());
    }

    #[test]
    fn perturbed_competitors_come_close_but_lose() {
        let r = run(2, 30, 52);
        for c in &r.cases {
            assert!(c.best_competitor_error >= c.optimal_error - 1e-9);
            // Perturbed-optimum competitors land within a small margin,
            // showing the challenge is not a strawman.
            assert!(
                c.best_competitor_error < 1.5 * c.optimal_error + 1e-9,
                "{}: {} vs {}",
                c.name,
                c.best_competitor_error,
                c.optimal_error
            );
        }
    }

    #[test]
    fn table_renders() {
        let r = run(2, 4, 3);
        assert!(r.table().contains("optimal"));
    }
}
