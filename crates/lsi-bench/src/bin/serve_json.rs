#![forbid(unsafe_code)]
//! Sharded serving baseline: query latency percentiles and throughput for
//! the scatter-gather cluster at 1, 2, and 4 shards, written as JSON.
//!
//! ```text
//! serve-json [--out PATH] [--smoke] [--process] [--seed S]
//! ```
//!
//! Emits `BENCH_serve.json` (at the repo root by default) with one record
//! per shard count: p50/p99 per-query latency in microseconds and queries
//! per second under a fixed number of submitter threads, over a
//! seed-deterministic query load. Before timing, every shard count's
//! answers are checked bitwise against the 1-shard cluster on a probe set
//! — the JSON records that the partitioning is answer-invariant, so a
//! throughput win can never be a silent correctness loss.
//!
//! `--process` adds cross-process rows: the same shard counts served by
//! real `shard-serve` daemon children (this binary re-execs itself as the
//! daemon entry point) behind the Unix-socket RPC transport, with the
//! same bitwise gate against the in-process 1-shard reference before any
//! timing — so the socket hop's cost is measured, never a divergence.
//!
//! `--smoke` shrinks the corpus and query count so CI can verify the path
//! end-to-end in well under a second.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lsi_core::{LsiConfig, LsiIndex};
use lsi_corpus::{SeparableConfig, SeparableModel};
use lsi_ir::TermDocumentMatrix;
use lsi_linalg::rng::seeded;
use lsi_serve::cluster::{Cluster, ClusterConfig, ClusterResponse};
use lsi_serve::{
    run_shard_daemon, DaemonCommand, EngineConfig, Query, ShardDaemonConfig, ShardSupervisor,
    SupervisorConfig,
};
use rand::Rng;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const SUBMITTERS: usize = 4;

struct Args {
    out: String,
    smoke: bool,
    process: bool,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut out = "BENCH_serve.json".to_owned();
    let mut smoke = false;
    let mut process = false;
    let mut seed = 20260706u64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().ok_or("--out needs a value")?,
            "--smoke" => smoke = true,
            "--process" => process = true,
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--help" | "-h" => {
                println!("usage: serve-json [--out PATH] [--smoke] [--process] [--seed S]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args {
        out,
        smoke,
        process,
        seed,
    })
}

/// The re-exec'd daemon entry point: `serve-json shard-daemon --snapshot …
/// --socket …` serves one shard over the Unix-socket RPC protocol, exactly
/// as `lsi shard-serve` does (the supervisor spawns this very binary so
/// the bench needs no other executable built).
///
/// # Panics
/// Panics on unknown or missing flags — the only caller is the supervisor,
/// whose argument list is fixed, so a mismatch is a programmer error.
fn run_daemon_child(args: &[String]) {
    let mut snapshot: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut workers = 2usize;
    let mut deadline_ms = 1_000u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--snapshot" => snapshot = it.next().map(PathBuf::from),
            "--socket" => socket = it.next().map(PathBuf::from),
            "--workers" => workers = it.next().and_then(|v| v.parse().ok()).unwrap_or(workers),
            "--deadline-ms" => {
                deadline_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(deadline_ms);
            }
            other => panic!("shard-daemon: unknown flag {other:?}"),
        }
    }
    let mut config = ShardDaemonConfig::new(
        snapshot.expect("shard-daemon needs --snapshot"),
        socket.expect("shard-daemon needs --socket"),
    );
    config.workers = workers;
    config.hard_deadline = Duration::from_millis(deadline_ms);
    if let Err(e) = run_shard_daemon(config) {
        eprintln!("shard-daemon failed: {e}");
        std::process::exit(4);
    }
}

/// Builds the benchmark index from a seed-deterministic separable corpus.
///
/// # Panics
/// Panics if the hard-coded corpus parameters become infeasible (a
/// programmer error caught immediately at startup, never a data-dependent
/// failure).
fn build_index(seed: u64, docs: usize) -> LsiIndex {
    let model = SeparableModel::build(SeparableConfig {
        universe_size: 120,
        num_topics: 4,
        primary_terms_per_topic: 30,
        epsilon: 0.05,
        min_doc_len: 20,
        max_doc_len: 40,
    })
    .expect("feasible corpus config");
    let mut rng = seeded(seed);
    let corpus = model.model().sample_corpus(docs, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("corpus fits universe");
    LsiIndex::build(&td, LsiConfig::with_rank(4)).expect("feasible rank")
}

fn generate_queries(seed: u64, total: usize, n_terms: usize) -> Vec<Query> {
    let mut rng = seeded(seed.wrapping_add(0x5e12e));
    (0..total)
        .map(|_| {
            let terms: Vec<(usize, f64)> = (0..rng.gen_range(1usize..=4))
                .map(|_| (rng.gen_range(0..n_terms), rng.gen_range(0.5..2.0)))
                .collect();
            Query::new(terms, rng.gen_range(1usize..=10))
        })
        .collect()
}

fn cluster_config(shards: usize) -> ClusterConfig {
    ClusterConfig {
        shards,
        engine: EngineConfig {
            workers: 2,
            queue_capacity: 4096,
            deadline: None,
            soft_deadline: None,
            fault_hook: None,
            // Shard rows measure the scatter-gather tier alone; the
            // coalescing win is measured separately below.
            max_batch: 1,
        },
        soft_deadline: None,
        hard_deadline: Duration::from_secs(5),
        ..ClusterConfig::default()
    }
}

fn response_bits(response: &ClusterResponse) -> Vec<(usize, u64)> {
    response
        .hits()
        .hits()
        .iter()
        .map(|h| (h.doc, h.score.to_bits()))
        .collect()
}

struct Record {
    shards: usize,
    p50_us: f64,
    p99_us: f64,
    qps: f64,
    bitwise_equal_to_1_shard: bool,
}

struct BatchRecord {
    max_batch: usize,
    qps: f64,
    batches: u64,
    batched_queries: u64,
}

/// Measures single-engine throughput with query coalescing capped at
/// `max_batch`: the whole load is submitted up front (the queue holds it),
/// so free workers see a standing backlog and coalesce up to the cap.
/// Returns every response's ranking bits (in submission order) alongside
/// the throughput, so the caller can assert batched == unbatched bitwise.
///
/// # Panics
/// Panics if a query against the healthy benchmark engine fails — a
/// programmer error in the bench itself, never a data-dependent failure.
fn run_batched_load(
    index: &LsiIndex,
    queries: &[Query],
    max_batch: usize,
) -> (Vec<Vec<(usize, u64)>>, BatchRecord) {
    let engine = lsi_serve::QueryEngine::new(
        index.clone(),
        EngineConfig {
            workers: 2,
            queue_capacity: queries.len().max(64),
            deadline: None,
            soft_deadline: None,
            fault_hook: None,
            max_batch,
        },
    );
    let t0 = Instant::now();
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| engine.submit(q.clone()).expect("queue sized for the load"))
        .collect();
    let bits: Vec<Vec<(usize, u64)>> = tickets
        .into_iter()
        .map(|t| {
            let response = t.wait().expect("healthy engine query");
            response
                .hits()
                .hits()
                .iter()
                .map(|h| (h.doc, h.score.to_bits()))
                .collect()
        })
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    let stats = engine.stats();
    engine.shutdown();
    (
        bits,
        BatchRecord {
            max_batch,
            qps: queries.len() as f64 / wall,
            batches: stats.batches,
            batched_queries: stats.batched_queries,
        },
    )
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// Drives the load through one cluster and measures per-query latency.
///
/// # Panics
/// Panics if a query against the healthy benchmark cluster fails or a
/// submitter thread dies — programmer errors in the bench itself, never
/// data-dependent failures.
fn run_load(cluster: &Arc<Cluster>, queries: &Arc<Vec<Query>>) -> (Vec<f64>, f64) {
    let chunk = queries.len().div_ceil(SUBMITTERS);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let cluster = Arc::clone(cluster);
            let queries = Arc::clone(queries);
            // lsi-lint: allow(P1-raw-threads, "bench load generators: submitters race wall-clock queries, not deterministic kernel work")
            std::thread::spawn(move || {
                let lo = (t * chunk).min(queries.len());
                let hi = (lo + chunk).min(queries.len());
                let mut latencies = Vec::with_capacity(hi - lo);
                for q in &queries[lo..hi] {
                    let q0 = Instant::now();
                    cluster.query(q.clone()).expect("healthy cluster query");
                    latencies.push(q0.elapsed().as_secs_f64() * 1e6);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("submitter thread"))
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (latencies, queries.len() as f64 / wall)
}

/// Measures one shard count served by real daemon child processes: a
/// durable cluster layout is written to a scratch directory, a
/// [`ShardSupervisor`] spawns one `shard-daemon` child per shard (this
/// binary, re-exec'd), probe answers are verified bitwise against the
/// in-process reference, and only then is the load timed.
///
/// # Panics
/// Panics if a probe query against the healthy, supervised cluster fails —
/// a programmer error in the bench itself, never a data-dependent failure.
fn run_process_load(
    index: &LsiIndex,
    queries: &Arc<Vec<Query>>,
    probes: usize,
    probe_bits: &[Vec<(usize, u64)>],
    shards: usize,
    seed: u64,
) -> Result<Record, String> {
    let dir = std::env::temp_dir().join(format!("lsi-serve-json-process-{seed}-{shards}"));
    let _ = std::fs::remove_dir_all(&dir);
    Cluster::create(index, &dir, cluster_config(shards))
        .map_err(|e| e.to_string())?
        .shutdown();
    let program = std::env::current_exe().map_err(|e| format!("cannot locate serve-json: {e}"))?;
    let command = DaemonCommand::new(program, vec!["shard-daemon".to_owned()]);
    let (cluster, supervisor) = ShardSupervisor::launch(
        &dir,
        cluster_config(shards),
        command,
        SupervisorConfig::default(),
    )
    .map_err(|e| format!("cannot launch shard daemons: {e}"))?;
    let bitwise_equal = queries
        .iter()
        .take(probes)
        .zip(probe_bits)
        .all(|(q, want)| {
            let response = cluster.query(q.clone()).expect("probe query");
            &response_bits(&response) == want
        });
    let (latencies, qps) = run_load(&cluster, queries);
    supervisor.shutdown();
    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => return Err("cluster handles leaked past join".to_owned()),
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(Record {
        shards,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        qps,
        bitwise_equal_to_1_shard: bitwise_equal,
    })
}

///
/// # Panics
/// Panics if the hard-coded benchmark parameters become infeasible (a
/// programmer error caught immediately at startup, never a data-dependent
/// failure).
fn main() -> Result<(), String> {
    // Re-exec dispatch: the supervisor spawns this very binary as the
    // shard daemon (see `run_daemon_child`).
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("shard-daemon") {
        run_daemon_child(&argv[2..]);
        return Ok(());
    }
    let args = parse_args()?;
    let (docs, total, probes) = if args.smoke {
        (40usize, 120usize, 20usize)
    } else {
        (240, 2_000, 200)
    };
    let index = build_index(args.seed, docs);
    let queries = Arc::new(generate_queries(args.seed, total, index.n_terms()));
    eprintln!(
        "serve-json: {} docs, {} terms, {} queries, shard counts {SHARD_COUNTS:?}",
        index.n_docs(),
        index.n_terms(),
        queries.len()
    );

    // Reference answers from the 1-shard cluster for the probe prefix.
    let reference = Cluster::build(&index, cluster_config(1)).map_err(|e| e.to_string())?;
    let probe_bits: Vec<Vec<(usize, u64)>> = queries
        .iter()
        .take(probes)
        .map(|q| {
            let response = reference.query(q.clone()).expect("reference query");
            response_bits(&response)
        })
        .collect();
    reference.shutdown();

    let mut records = Vec::new();
    for &shards in &SHARD_COUNTS {
        let cluster =
            Arc::new(Cluster::build(&index, cluster_config(shards)).map_err(|e| e.to_string())?);
        // Correctness first: the sharded answers must be bitwise the
        // 1-shard answers before any throughput number is recorded.
        let bitwise_equal = queries
            .iter()
            .take(probes)
            .zip(&probe_bits)
            .all(|(q, want)| {
                let response = cluster.query(q.clone()).expect("probe query");
                &response_bits(&response) == want
            });
        let (latencies, qps) = run_load(&cluster, &queries);
        let record = Record {
            shards,
            p50_us: percentile(&latencies, 0.50),
            p99_us: percentile(&latencies, 0.99),
            qps,
            bitwise_equal_to_1_shard: bitwise_equal,
        };
        eprintln!(
            "  shards={shards}  p50={:>8.1} us  p99={:>8.1} us  {:>8.0} q/s  bitwise_equal={}",
            record.p50_us, record.p99_us, record.qps, record.bitwise_equal_to_1_shard
        );
        match Arc::try_unwrap(cluster) {
            Ok(cluster) => cluster.shutdown(),
            Err(_) => return Err("cluster handles leaked past join".to_owned()),
        }
        records.push(record);
    }
    if records.iter().any(|r| !r.bitwise_equal_to_1_shard) {
        return Err("sharded answers diverged from the 1-shard reference".to_owned());
    }

    // Cross-process rows: the same shard counts behind real daemon
    // children and the socket RPC transport. Correctness first, as above —
    // a cross-process answer must be bitwise the in-process 1-shard answer
    // before the socket hop's cost is recorded.
    let mut process_records = Vec::new();
    if args.process {
        for &shards in &SHARD_COUNTS {
            let record =
                run_process_load(&index, &queries, probes, &probe_bits, shards, args.seed)?;
            eprintln!(
                "  process shards={shards}  p50={:>8.1} us  p99={:>8.1} us  {:>8.0} q/s  bitwise_equal={}",
                record.p50_us, record.p99_us, record.qps, record.bitwise_equal_to_1_shard
            );
            process_records.push(record);
        }
        if process_records.iter().any(|r| !r.bitwise_equal_to_1_shard) {
            return Err("cross-process answers diverged from the in-process reference".to_owned());
        }
    }

    // Coalesced scoring: same engine, same standing backlog, max_batch 1
    // (sequential) vs 32 (coalesced). Correctness first, as above: every
    // response must be bitwise the sequential answer before the batched
    // throughput number is recorded.
    let (sequential_bits, sequential) = run_batched_load(&index, &queries, 1);
    let (batched_bits, batched) = run_batched_load(&index, &queries, 32);
    if sequential_bits != batched_bits {
        return Err("batched answers diverged from sequential scoring".to_owned());
    }
    let batch_records = [sequential, batched];
    for r in &batch_records {
        eprintln!(
            "  max_batch={:<3} {:>8.0} q/s  ({} queries coalesced into {} passes)",
            r.max_batch, r.qps, r.batched_queries, r.batches
        );
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Hand-rolled JSON: the workspace is dependency-free by policy, and the
    // schema is flat enough that formatting it directly stays readable.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_logical_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"submitter_threads\": {SUBMITTERS},");
    let _ = writeln!(json, "  \"queries\": {},", queries.len());
    let _ = writeln!(json, "  \"corpus_docs\": {docs},");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(
        json,
        "  \"note\": \"answers verified bitwise-identical across shard counts before timing\","
    );
    json.push_str("  \"shard_counts\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shards\": {}, \"p50_latency_us\": {:.1}, \"p99_latency_us\": {:.1}, \"queries_per_sec\": {:.0}, \"bitwise_equal_to_1_shard\": {}}}",
            r.shards, r.p50_us, r.p99_us, r.qps, r.bitwise_equal_to_1_shard
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    if !process_records.is_empty() {
        json.push_str(
            "  \"cross_process_note\": \"same shard counts served by shard-serve daemon children over the Unix-socket RPC transport; answers verified bitwise-identical to the in-process reference before timing\",\n",
        );
        json.push_str("  \"cross_process_shard_counts\": [\n");
        for (i, r) in process_records.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"shards\": {}, \"p50_latency_us\": {:.1}, \"p99_latency_us\": {:.1}, \"queries_per_sec\": {:.0}, \"bitwise_equal_to_in_process\": {}}}",
                r.shards, r.p50_us, r.p99_us, r.qps, r.bitwise_equal_to_1_shard
            );
            json.push_str(if i + 1 < process_records.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        json.push_str("  ],\n");
    }
    json.push_str(
        "  \"batching_note\": \"single engine, 2 workers, full backlog; batched answers verified bitwise-identical to sequential before timing\",\n",
    );
    json.push_str("  \"batching\": [\n");
    for (i, r) in batch_records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"max_batch\": {}, \"queries_per_sec\": {:.0}, \"coalesced_passes\": {}, \"coalesced_queries\": {}, \"bitwise_equal_to_sequential\": true}}",
            r.max_batch, r.qps, r.batches, r.batched_queries
        );
        json.push_str(if i + 1 < batch_records.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&args.out, &json).map_err(|e| format!("writing {}: {e}", args.out))?;
    println!("wrote {} ({} shard counts)", args.out, records.len());
    Ok(())
}
