#![forbid(unsafe_code)]
//! Cold-start baseline: open, journal-replay, and first-query wall times
//! for monolithic v2 versus sectioned v3 snapshots, written as JSON.
//!
//! ```text
//! open-json [--out PATH] [--smoke] [--seed S]
//! ```
//!
//! Emits `BENCH_open.json` (at the repo root by default) with one record
//! per corpus size: for each snapshot format, the bytes on disk, the bytes
//! actually read to open, and median open / first-query wall milliseconds;
//! plus the replay cost of a journal at the auto-compaction frame budget.
//! A v2 monolith cannot be opened without gulping the whole file, so its
//! open bytes equal its file size and its open time grows with the index.
//! A v3 open reads only the header, the section directory, and the meta
//! section — the run *asserts* (on exact byte counts, not timings) that v3
//! open cost is flat across a 10× size step and a small fraction of the
//! file, and exits nonzero if the sublinearity claim ever regresses.
//!
//! Streamed v3 first-query answers are checked bitwise against the eager
//! v2 open before anything is timed, so the cheaper open can never be a
//! silent correctness loss.
//!
//! `--smoke` shrinks corpus sizes and repetitions so CI can verify the
//! path end-to-end in well under a second.

use std::fmt::Write as _;
use std::time::Instant;

use lsi_core::{
    read_index, write_index, write_index_v2, DurableIndex, LazySnapshot, LsiConfig, LsiIndex,
};
use lsi_corpus::{SeparableConfig, SeparableModel};
use lsi_ir::retrieval::RankedList;
use lsi_ir::TermDocumentMatrix;
use lsi_linalg::rng::seeded;

/// Fold-in frames staged in the replay measurement — the journal length an
/// auto-compaction budget of the same value guarantees recovery never
/// exceeds.
const REPLAY_FRAMES: usize = 64;

struct Args {
    out: String,
    smoke: bool,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut out = "BENCH_open.json".to_owned();
    let mut smoke = false;
    let mut seed = 20260706u64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().ok_or("--out needs a value")?,
            "--smoke" => smoke = true,
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--help" | "-h" => {
                println!("usage: open-json [--out PATH] [--smoke] [--seed S]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args { out, smoke, seed })
}

/// Builds the benchmark index from a seed-deterministic separable corpus.
///
/// # Panics
/// Panics if the hard-coded corpus parameters become infeasible (a
/// programmer error caught immediately at startup, never a data-dependent
/// failure).
fn build_index(seed: u64, docs: usize) -> LsiIndex {
    let model = SeparableModel::build(SeparableConfig {
        universe_size: 120,
        num_topics: 4,
        primary_terms_per_topic: 30,
        epsilon: 0.05,
        min_doc_len: 20,
        max_doc_len: 40,
    })
    .expect("feasible corpus config");
    let mut rng = seeded(seed);
    let corpus = model.model().sample_corpus(docs, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("corpus fits universe");
    LsiIndex::build(&td, LsiConfig::with_rank(4)).expect("feasible rank")
}

/// Median wall time in milliseconds over `reps` runs of `f`.
///
/// # Panics
/// Panics if a timing is not finite (impossible for `Instant` deltas).
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// Writes `index` to `path` in the format chosen by `writer`, synced.
fn write_snapshot(
    path: &std::path::Path,
    index: &LsiIndex,
    writer: fn(
        &mut std::io::BufWriter<std::fs::File>,
        &LsiIndex,
    ) -> Result<(), lsi_core::StorageError>,
) -> Result<u64, String> {
    let file =
        std::fs::File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    let mut w = std::io::BufWriter::new(file);
    writer(&mut w, index).map_err(|e| format!("write {}: {e}", path.display()))?;
    let file = w
        .into_inner()
        .map_err(|e| format!("flush {}: {e}", path.display()))?;
    file.sync_all()
        .map_err(|e| format!("sync {}: {e}", path.display()))?;
    Ok(std::fs::metadata(path)
        .map_err(|e| format!("stat {}: {e}", path.display()))?
        .len())
}

/// The bit pattern of a ranked list: doc ids plus exact score bits.
fn ranked_bits(hits: &RankedList) -> Vec<(usize, u64)> {
    hits.hits()
        .iter()
        .map(|h| (h.doc, h.score.to_bits()))
        .collect()
}

/// One format's cold-start measurements.
struct FormatRecord {
    file_bytes: u64,
    open_bytes: u64,
    open_ms: f64,
    first_query_ms: f64,
}

/// One corpus size's measurements.
struct SizeRecord {
    docs: usize,
    v2: FormatRecord,
    v3: FormatRecord,
    replay_frames: usize,
    replay_ms: f64,
    streaming_matches_eager: bool,
}

///
/// # Panics
/// Panics if the benchmark's hard-coded parameters become infeasible (a
/// programmer error caught immediately at startup, never a data-dependent
/// failure).
fn main() -> Result<(), String> {
    let args = parse_args()?;
    // The 10⁶-doc row records cold-start cost at serving scale (ROADMAP:
    // "millions of users"); the sublinearity assertions below then span a
    // 100× size step.
    let (sizes, reps): (&[usize], usize) = if args.smoke {
        (&[1_000, 4_000], 3)
    } else {
        (&[10_000, 100_000, 1_000_000], 5)
    };
    let probe: Vec<(usize, f64)> = vec![(0, 1.0), (7, 0.5), (19, 1.25)];
    let top_k = 10usize;

    let dir = std::env::temp_dir().join(format!("lsi-open-json-{:016x}", args.seed));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

    let mut records: Vec<SizeRecord> = Vec::new();
    for &docs in sizes {
        eprintln!("open-json: building {docs}-doc index…");
        let index = build_index(args.seed, docs);

        let v2_path = dir.join(format!("open-{docs}-v2.lsix"));
        let v3_path = dir.join(format!("open-{docs}-v3.lsix"));
        let v2_bytes = write_snapshot(&v2_path, &index, write_index_v2)?;
        let v3_bytes = write_snapshot(&v3_path, &index, write_index)?;

        // Correctness before speed: the streamed v3 first-query answer must
        // be bitwise identical to the eager v2 open's.
        let eager = {
            let file = std::fs::File::open(&v2_path).map_err(|e| format!("open v2: {e}"))?;
            read_index(&mut std::io::BufReader::new(file)).map_err(|e| format!("read v2: {e}"))?
        };
        let mut lazy = LazySnapshot::open_path(&v3_path).map_err(|e| format!("open v3: {e}"))?;
        let open_bytes_v3 = lazy.bytes_read();
        let streamed = lazy
            .query_streaming(&probe, top_k)
            .map_err(|e| format!("streamed query: {e}"))?;
        let streaming_matches_eager =
            ranked_bits(&streamed) == ranked_bits(&eager.query(&probe, top_k));
        if !streaming_matches_eager {
            return Err(format!(
                "{docs} docs: streamed v3 answer diverged from eager v2"
            ));
        }

        // v2 cold start: the monolith gulps the whole file, then queries.
        let v2_open_ms = median_ms(reps, || {
            let file = std::fs::File::open(&v2_path).expect("v2 snapshot readable");
            let idx = read_index(&mut std::io::BufReader::new(file)).expect("v2 snapshot parses");
            std::hint::black_box(idx.n_docs());
        });
        let v2_query_ms = median_ms(reps, || {
            std::hint::black_box(eager.query(&probe, top_k));
        });

        // v3 cold start: header + directory + meta only, then one streamed
        // scoring pass. Each rep re-opens so the query is a true first one.
        let v3_open_ms = median_ms(reps, || {
            let snap = LazySnapshot::open_path(&v3_path).expect("v3 snapshot opens");
            std::hint::black_box(snap.n_docs());
        });
        let v3_query_ms = median_ms(reps, || {
            let mut snap = LazySnapshot::open_path(&v3_path).expect("v3 snapshot opens");
            std::hint::black_box(snap.query_streaming(&probe, top_k).expect("streamed query"));
        });

        // Replay cost at the auto-compaction budget: a durable index whose
        // journal holds REPLAY_FRAMES fold-ins is the worst recovery a
        // set_auto_compact(REPLAY_FRAMES) policy permits.
        let durable_path = dir.join(format!("open-{docs}-durable.lsix"));
        {
            let mut durable = DurableIndex::create(&durable_path, index.clone())
                .map_err(|e| format!("durable create: {e}"))?;
            for i in 0..REPLAY_FRAMES {
                durable
                    .add_document(&[(i % 120, 1.0), ((i * 7) % 120, 0.5)])
                    .map_err(|e| format!("journaled add: {e}"))?;
            }
        }
        let mut replay_frames = 0usize;
        let replay_ms = median_ms(reps, || {
            let (durable, report) =
                DurableIndex::open_durable(&durable_path).expect("durable reopen");
            replay_frames = report.frames_replayed;
            std::hint::black_box(durable.index().n_docs());
        });

        eprintln!(
            "  {docs:>6} docs  v2 open {v2_open_ms:>8.3} ms ({v2_bytes} B)  \
             v3 open {v3_open_ms:>8.3} ms ({open_bytes_v3} B)  replay {replay_ms:>8.3} ms"
        );
        records.push(SizeRecord {
            docs,
            v2: FormatRecord {
                file_bytes: v2_bytes,
                open_bytes: v2_bytes,
                open_ms: v2_open_ms,
                first_query_ms: v2_query_ms,
            },
            v3: FormatRecord {
                file_bytes: v3_bytes,
                open_bytes: open_bytes_v3,
                open_ms: v3_open_ms,
                first_query_ms: v3_query_ms,
            },
            replay_frames,
            replay_ms,
            streaming_matches_eager,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    // The sublinearity claim, on exact byte counts (timings wobble; bytes
    // cannot): a v3 open reads a small, size-independent prefix, while a v2
    // open reads everything.
    let small = records.first().ok_or("no sizes measured")?;
    let large = records.last().ok_or("no sizes measured")?;
    if large.v3.open_bytes * 20 > large.v3.file_bytes {
        return Err(format!(
            "v3 open read {} of {} bytes at {} docs — not sublinear",
            large.v3.open_bytes, large.v3.file_bytes, large.docs
        ));
    }
    if large.v3.open_bytes > small.v3.open_bytes + 256 {
        return Err(format!(
            "v3 open bytes grew from {} to {} across a {}x size step",
            small.v3.open_bytes,
            large.v3.open_bytes,
            large.docs / small.docs.max(1)
        ));
    }

    // Hand-rolled JSON: the workspace is dependency-free by policy, and the
    // schema is flat enough that formatting it directly stays readable.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"probe_top_k\": {top_k},");
    let _ = writeln!(json, "  \"replay_frames_budget\": {REPLAY_FRAMES},");
    let _ = writeln!(
        json,
        "  \"note\": \"v3 open reads header + section directory + meta only; open_bytes asserted flat across sizes and < file_bytes/20; streamed answers checked bitwise against eager opens\","
    );
    json.push_str("  \"sizes\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"docs\": {}, \
             \"v2\": {{\"file_bytes\": {}, \"open_bytes\": {}, \"open_ms\": {:.4}, \"first_query_ms\": {:.4}}}, \
             \"v3\": {{\"file_bytes\": {}, \"open_bytes\": {}, \"open_ms\": {:.4}, \"first_query_ms\": {:.4}}}, \
             \"replay\": {{\"frames\": {}, \"replay_ms\": {:.4}}}, \
             \"streaming_matches_eager\": {}}}",
            r.docs,
            r.v2.file_bytes,
            r.v2.open_bytes,
            r.v2.open_ms,
            r.v2.first_query_ms,
            r.v3.file_bytes,
            r.v3.open_bytes,
            r.v3.open_ms,
            r.v3.first_query_ms,
            r.replay_frames,
            r.replay_ms,
            r.streaming_matches_eager,
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"v3_open_sublinear\": true\n");
    json.push_str("}\n");

    std::fs::write(&args.out, &json).map_err(|e| format!("writing {}: {e}", args.out))?;
    println!("wrote {} ({} sizes)", args.out, records.len());
    Ok(())
}
