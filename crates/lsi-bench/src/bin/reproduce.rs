#![forbid(unsafe_code)]
//! Regenerates every experiment in the paper's evaluation.
//!
//! ```text
//! reproduce [--exp e1|e2|…|e10|all] [--seed N] [--paper-scale]
//! ```
//!
//! By default runs every experiment at a laptop-friendly scale; pass
//! `--paper-scale` to run E1 at the paper's exact 2000×1000 configuration
//! (slower; use a release build).
//!
//! Experiments are isolated: a panic in one (a regression, a numerical
//! blow-up) is caught, recorded, and the remaining experiments still run.
//! A summary table at the end lists every experiment's status, and the
//! process exits nonzero if any failed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use lsi_bench::*;

struct Args {
    exp: String,
    seed: u64,
    paper_scale: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut exp = "all".to_owned();
    let mut seed = 20260706u64;
    let mut paper_scale = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--exp" => {
                exp = it.next().ok_or("--exp needs a value")?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--paper-scale" => paper_scale = true,
            "--help" | "-h" => {
                println!("usage: reproduce [--exp e1|..|e15|all] [--seed N] [--paper-scale]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args {
        exp,
        seed,
        paper_scale,
    })
}

fn heading(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Renders a caught panic payload as a one-line message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    const KNOWN: [&str; 16] = [
        "all", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
        "e14", "e15",
    ];
    if !KNOWN.contains(&args.exp.as_str()) {
        eprintln!(
            "error: unknown experiment {:?}; expected one of {}",
            args.exp,
            KNOWN.join(", ")
        );
        return ExitCode::FAILURE;
    }
    let seed = args.seed;
    let all = args.exp == "all";
    let paper_scale = args.paper_scale;

    type Body = Box<dyn FnOnce()>;
    let experiments: Vec<(&'static str, &'static str, Body)> = vec![
        (
            "e1",
            "pairwise document angles, original vs LSI space (the paper's table)",
            Box::new(move || {
                let r = if paper_scale {
                    println!("(paper scale: 2000 terms, 20 topics, 1000 documents, rank 20)");
                    e1_angles::run_paper(seed)
                } else {
                    println!("(scaled: 40% of the paper's dimensions)");
                    e1_angles::run_scaled(0.4, seed)
                };
                print!("{}", r.table());
                if let Some(f) = r.intratopic_collapse_factor() {
                    println!("intratopic mean-angle collapse factor: {f:.1}x (paper: ~62x)");
                }
            }),
        ),
        (
            "e2",
            "delta-skew vs separability epsilon (Theorems 2-3)",
            Box::new(move || {
                let r = e2_skew::run(0.3, &[0.0, 0.01, 0.05, 0.1, 0.2, 0.3], seed);
                print!("{}", r.table());
            }),
        ),
        (
            "e3",
            "skew asymptotics in document length and corpus size (Theorem 2)",
            Box::new(move || {
                let r = e3_asymptotics::run(
                    &[10, 25, 50, 100, 200, 400],
                    &[50, 100, 200, 400, 800],
                    seed,
                );
                print!("{}", r.table());
            }),
        ),
        (
            "e4",
            "Johnson-Lindenstrauss distance preservation (Lemma 2)",
            Box::new(move || {
                let r = e4_jl::run(0.5, &[25, 50, 100, 200, 400], 150, seed);
                print!("{}", r.table());
            }),
        ),
        (
            "e5",
            "two-step RP+LSI Frobenius recovery (Theorem 5)",
            Box::new(move || {
                let r = e5_twostep::run(0.4, &[20, 40, 80, 160, 320], seed);
                print!("{}", r.table());
            }),
        ),
        (
            "e6",
            "running time: direct LSI vs two-step (Section 5)",
            Box::new(move || {
                let r = e6_runtime::run(
                    &[1000, 2000, 4000, 8000],
                    400,
                    10,
                    60,
                    2_000_000_000, // dense baseline capped at ~2 Gflop-equivalents
                    seed,
                );
                print!("{}", r.table());
            }),
        ),
        (
            "e7",
            "synonymy: difference vector is a trailing eigenvector (Section 4)",
            Box::new(move || {
                let r = e7_synonymy::run(400, seed);
                print!("{}", r.table());
            }),
        ),
        (
            "e8",
            "spectral recovery of planted high-conductance subgraphs (Theorem 6)",
            Box::new(move || {
                let r = e8_graph::run(8, 15, &[0.0, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0], seed);
                print!("{}", r.table());
            }),
        ),
        (
            "e9",
            "Eckart-Young optimality of the truncated SVD (Theorem 1)",
            Box::new(move || {
                let r = e9_eckart_young::run(4, 40, seed);
                print!("{}", r.table());
                println!(
                    "optimality held across all competitors: {}",
                    r.optimality_held()
                );
            }),
        ),
        (
            "e10",
            "ablations: SVD backend, projection ensemble, weighting scheme",
            Box::new(move || {
                let r = e10_ablations::run(0.3, seed);
                print!("{}", r.table());
            }),
        ),
        (
            "e11",
            "speedups head-to-head: RP+LSI vs FKV column sampling (Section 5)",
            Box::new(move || {
                let r = e11_sampling::run(0.3, &[20, 40, 80, 160], seed);
                print!("{}", r.table());
            }),
        ),
        (
            "e12",
            "open question: documents on several topics (Section 6)",
            Box::new(move || {
                let r = e12_mixtures::run(&[1, 2, 3, 4], 120, seed);
                print!("{}", r.table());
            }),
        ),
        (
            "e13",
            "open question: does LSI address polysemy? (Section 6)",
            Box::new(move || {
                let r = e13_polysemy::run(300, seed);
                print!("{}", r.table());
            }),
        ),
        (
            "e14",
            "document classification: k-means in raw vs LSI space (Section 4)",
            Box::new(move || {
                let r = e14_clustering::run(0.3, &[0.02, 0.05, 0.1, 0.2], seed);
                print!("{}", r.table());
            }),
        ),
        (
            "e15",
            "styles as the perturbation F of Theorem 3 (Definition 3)",
            Box::new(move || {
                let r = e15_styles::run(5, &[0.0, 0.1, 0.25, 0.5, 0.75, 1.0], seed);
                print!("{}", r.table());
            }),
        ),
    ];

    let mut statuses: Vec<(&'static str, Option<String>)> = Vec::new();
    for (id, title, body) in experiments {
        if !(all || args.exp == id) {
            continue;
        }
        heading(&id.to_uppercase(), title);
        match catch_unwind(AssertUnwindSafe(body)) {
            Ok(()) => statuses.push((id, None)),
            Err(payload) => {
                let msg = panic_message(payload);
                eprintln!("{} FAILED: {msg}", id.to_uppercase());
                statuses.push((id, Some(msg)));
            }
        }
    }

    let failures = statuses.iter().filter(|(_, f)| f.is_some()).count();
    println!(
        "\n=== summary: {}/{} experiments ok ===",
        statuses.len() - failures,
        statuses.len()
    );
    for (id, failure) in &statuses {
        match failure {
            None => println!("  {:<4} ok", id),
            Some(msg) => {
                let mut msg = msg.replace('\n', " ");
                if msg.len() > 100 {
                    msg.truncate(97);
                    msg.push_str("...");
                }
                println!("  {:<4} FAILED: {msg}", id);
            }
        }
    }

    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
