#![forbid(unsafe_code)]
//! Kernel benchmark baseline: wall-times and GFLOP/s for the parallel
//! linalg kernels at 1, 2, and 4 linalg threads, written as JSON.
//!
//! ```text
//! bench-json [--out PATH] [--smoke]
//! ```
//!
//! Emits `BENCH_kernels.json` (at the repo root by default) with one record
//! per (kernel, thread count): median wall milliseconds over several runs,
//! derived GFLOP/s where a flop count is well-defined, and speedup versus
//! the 1-thread row. The host's logical CPU count is recorded alongside —
//! on a single-core host the >1-thread rows measure scheduling overhead,
//! not speedup, and the JSON says so rather than hiding it.
//!
//! `--smoke` shrinks problem sizes and repetitions so CI can verify the
//! path end-to-end in well under a second.

use std::fmt::Write as _;
use std::time::Instant;

use lsi_linalg::lanczos::{lanczos_svd, LanczosOptions};
use lsi_linalg::parallel::set_threads;
use lsi_linalg::rng::{gaussian_matrix, seeded};
use lsi_linalg::CsrMatrix;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

struct Args {
    out: String,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = "BENCH_kernels.json".to_owned();
    let mut smoke = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().ok_or("--out needs a value")?,
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!("usage: bench-json [--out PATH] [--smoke]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args { out, smoke })
}

/// Median wall time in milliseconds over `reps` runs of `f`.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

struct Record {
    kernel: &'static str,
    shape: String,
    threads: usize,
    wall_ms: f64,
    /// `None` when a flop count is not well-defined (e.g. whole Lanczos runs).
    gflops: Option<f64>,
    speedup_vs_1t: f64,
}

/// Runs one kernel at every thread count and returns its records.
fn sweep(
    kernel: &'static str,
    shape: String,
    flops: Option<f64>,
    reps: usize,
    mut f: impl FnMut(),
) -> Vec<Record> {
    let mut records: Vec<Record> = Vec::new();
    for &t in &THREAD_COUNTS {
        set_threads(t);
        let wall_ms = median_ms(reps, &mut f);
        let base = records.first().map_or(wall_ms, |r: &Record| r.wall_ms);
        records.push(Record {
            kernel,
            shape: shape.clone(),
            threads: t,
            wall_ms,
            gflops: flops.map(|fl| fl / (wall_ms * 1e6)),
            speedup_vs_1t: base / wall_ms,
        });
        eprintln!("  {kernel:<24} threads={t}  {wall_ms:>10.3} ms");
    }
    set_threads(0);
    records
}

fn sparse_matrix(m: usize, n: usize, seed: u64) -> CsrMatrix {
    let mut rng = seeded(seed);
    let mut d = gaussian_matrix(&mut rng, m, n);
    d.map_inplace(|x| if x.abs() > 1.5 { x } else { 0.0 });
    CsrMatrix::from_dense(&d, 0.0)
}

///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
fn main() -> Result<(), String> {
    let args = parse_args()?;
    let (dim, reps, svd_mn, svd_k) = if args.smoke {
        (96usize, 3usize, (200usize, 100usize), 5usize)
    } else {
        (1000, 5, (5000, 2000), 50)
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "bench-json: host has {host_cpus} logical CPU(s); sweeping threads {THREAD_COUNTS:?}"
    );

    let mut records: Vec<Record> = Vec::new();

    // Dense matmul, dim³ problem: 2·n³ flops.
    let mut rng = seeded(0xbe7c);
    let a = gaussian_matrix(&mut rng, dim, dim);
    let b = gaussian_matrix(&mut rng, dim, dim);
    records.extend(sweep(
        "dense_matmul",
        format!("{dim}x{dim}x{dim}"),
        Some(2.0 * (dim as f64).powi(3)),
        reps,
        || {
            std::hint::black_box(a.matmul(&b).unwrap());
        },
    ));

    // Dense matvec on the same matrix: 2·n² flops.
    let x = vec![1.0; dim];
    let mut out = vec![0.0; dim];
    records.extend(sweep(
        "dense_matvec",
        format!("{dim}x{dim}"),
        Some(2.0 * (dim as f64).powi(2)),
        reps * 20,
        || {
            a.matvec_into(std::hint::black_box(&x), &mut out).unwrap();
        },
    ));

    // CSR matvec on a thresholded-Gaussian sparse matrix: 2·nnz flops.
    let (sm, sn) = svd_mn;
    let sp = sparse_matrix(sm, sn, 0x5eed);
    let sx = vec![1.0; sn];
    let mut sout = vec![0.0; sm];
    records.extend(sweep(
        "csr_matvec",
        format!("{sm}x{sn} nnz={}", sp.nnz()),
        Some(2.0 * sp.nnz() as f64),
        reps * 20,
        || {
            sp.matvec_into(std::hint::black_box(&sx), &mut sout)
                .unwrap();
        },
    ));

    // Rank-k Lanczos SVD of the sparse matrix; no single flop count.
    records.extend(sweep(
        "lanczos_svd",
        format!("{sm}x{sn} k={svd_k}"),
        None,
        reps.min(3),
        || {
            std::hint::black_box(lanczos_svd(&sp, svd_k, &LanczosOptions::default()).unwrap());
        },
    ));

    // Hand-rolled JSON: the workspace is dependency-free by policy, and the
    // schema is flat enough that formatting it directly stays readable.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_logical_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"thread_counts\": [1, 2, 4],");
    let _ = writeln!(
        json,
        "  \"note\": \"bitwise-identical outputs at every thread count; speedup requires >1 host CPU\","
    );
    json.push_str("  \"kernels\": [\n");
    for (i, r) in records.iter().enumerate() {
        let gflops = r.gflops.map_or("null".to_owned(), |g| format!("{g:.4}"));
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"wall_ms\": {:.4}, \"gflops\": {}, \"speedup_vs_1t\": {:.3}}}",
            r.kernel, r.shape, r.threads, r.wall_ms, gflops, r.speedup_vs_1t
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&args.out, &json).map_err(|e| format!("writing {}: {e}", args.out))?;
    println!("wrote {} ({} records)", args.out, records.len());
    Ok(())
}
