#![forbid(unsafe_code)]
//! Kernel benchmark baseline: wall-times and GFLOP/s for the parallel
//! linalg kernels at 1, 2, and 4 linalg threads, written as JSON.
//!
//! ```text
//! bench-json [--out PATH] [--smoke]
//! ```
//!
//! Emits `BENCH_kernels.json` (at the repo root by default) with one record
//! per (kernel, thread count): median wall milliseconds over several runs,
//! derived GFLOP/s (exact counts for the dense/CSR kernels, a
//! matvec-count estimate for whole Lanczos runs), and speedup versus
//! the 1-thread row. The host's logical CPU count is recorded alongside —
//! on a single-core host the >1-thread rows measure scheduling overhead,
//! not speedup, and the JSON says so rather than hiding it.
//!
//! `--smoke` shrinks problem sizes and repetitions so CI can verify the
//! path end-to-end in well under a second. `--gate BASELINE.json`
//! re-measures the single-thread dense matmul and exits non-zero when it
//! regresses more than 20% below the committed baseline's GFLOP/s.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use lsi_linalg::lanczos::{lanczos_svd, LanczosOptions};
use lsi_linalg::parallel::set_threads;
use lsi_linalg::rng::{gaussian_matrix, seeded};
use lsi_linalg::{CsrMatrix, LinearOperator, Matrix, Result as LinalgResult};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Largest single-thread GFLOP/s regression `--gate` tolerates before
/// failing, as a fraction of the committed baseline.
const GATE_TOLERANCE: f64 = 0.20;

struct Args {
    out: String,
    smoke: bool,
    gate: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = "BENCH_kernels.json".to_owned();
    let mut smoke = false;
    let mut gate = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().ok_or("--out needs a value")?,
            "--smoke" => smoke = true,
            "--gate" => gate = Some(it.next().ok_or("--gate needs a baseline path")?),
            "--help" | "-h" => {
                println!("usage: bench-json [--out PATH] [--smoke] [--gate BASELINE.json]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args { out, smoke, gate })
}

/// Median wall time in milliseconds over `reps` runs of `f`.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

struct Record {
    kernel: &'static str,
    shape: String,
    threads: usize,
    wall_ms: f64,
    /// `None` when no flop count (exact or estimated) is attached. Lanczos
    /// rows carry a matvec-count estimate rather than an exact count.
    gflops: Option<f64>,
    speedup_vs_1t: f64,
}

/// Runs one kernel at every thread count and returns its records.
fn sweep(
    kernel: &'static str,
    shape: String,
    flops: Option<f64>,
    reps: usize,
    mut f: impl FnMut(),
) -> Vec<Record> {
    let mut records: Vec<Record> = Vec::new();
    for &t in &THREAD_COUNTS {
        set_threads(t);
        let wall_ms = median_ms(reps, &mut f);
        let base = records.first().map_or(wall_ms, |r: &Record| r.wall_ms);
        records.push(Record {
            kernel,
            shape: shape.clone(),
            threads: t,
            wall_ms,
            gflops: flops.map(|fl| fl / (wall_ms * 1e6)),
            speedup_vs_1t: base / wall_ms,
        });
        eprintln!("  {kernel:<24} threads={t}  {wall_ms:>10.3} ms");
    }
    set_threads(0);
    records
}

/// A [`LinearOperator`] shim that counts matvec applications, so a flop
/// estimate can be attached to a whole Lanczos run: every apply (forward
/// or transposed) touches each stored entry once (2·nnz flops), and the
/// tridiagonal/re-orthogonalization work is a lower-order term the
/// estimate deliberately ignores. The count is deterministic — Lanczos is
/// seed-deterministic and thread-invariant — so one counted run prices
/// every timed run.
struct CountingOp<'a> {
    inner: &'a CsrMatrix,
    applies: AtomicU64,
}

impl LinearOperator for CountingOp<'_> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn apply(&self, x: &[f64]) -> LinalgResult<Vec<f64>> {
        self.applies.fetch_add(1, Ordering::Relaxed);
        self.inner.apply(x)
    }

    fn apply_transpose(&self, x: &[f64]) -> LinalgResult<Vec<f64>> {
        self.applies.fetch_add(1, Ordering::Relaxed);
        self.inner.apply_transpose(x)
    }

    fn apply_into(&self, x: &[f64], out: &mut [f64]) -> LinalgResult<()> {
        self.applies.fetch_add(1, Ordering::Relaxed);
        self.inner.apply_into(x, out)
    }

    fn apply_transpose_into(&self, x: &[f64], out: &mut [f64]) -> LinalgResult<()> {
        self.applies.fetch_add(1, Ordering::Relaxed);
        self.inner.apply_transpose_into(x, out)
    }

    fn to_dense(&self) -> LinalgResult<Matrix> {
        self.inner.to_dense()
    }
}

/// Extracts the committed `gflops` for one (kernel, threads) row from a
/// previously emitted baseline file. The parser leans on the emitter's
/// one-row-per-line format below — it is not a general JSON reader.
fn committed_gflops(path: &str, kernel: &str, threads: usize) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let kernel_key = format!("\"kernel\": \"{kernel}\"");
    let threads_key = format!("\"threads\": {threads},");
    for line in text.lines() {
        if !line.contains(&kernel_key) || !line.contains(&threads_key) {
            continue;
        }
        let key = "\"gflops\": ";
        let pos = line
            .find(key)
            .ok_or_else(|| format!("{path}: row without a gflops field"))?
            + key.len();
        let rest = &line[pos..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        return rest[..end]
            .trim()
            .parse()
            .map_err(|e| format!("{path}: bad gflops value: {e}"));
    }
    Err(format!("{path} has no {kernel} threads={threads} row"))
}

/// Perf-regression gate: re-measures the single-thread dense matmul (the
/// packed-GEMM hot path) at the full benchmark size and fails when it has
/// lost more than [`GATE_TOLERANCE`] of the committed baseline's GFLOP/s.
/// Run-to-run noise on a quiet host is a few percent; a 20% drop means
/// the kernel regressed, not the weather.
///
/// # Panics
/// Panics if the square matmul of two well-formed benchmark matrices
/// fails — a programmer error in the bench itself.
fn run_gate(baseline_path: &str) -> Result<(), String> {
    let dim = 1000usize;
    let committed = committed_gflops(baseline_path, "dense_matmul", 1)?;
    let mut rng = seeded(0xbe7c);
    let a = gaussian_matrix(&mut rng, dim, dim);
    let b = gaussian_matrix(&mut rng, dim, dim);
    set_threads(1);
    let wall_ms = median_ms(3, || {
        std::hint::black_box(a.matmul(&b).unwrap());
    });
    set_threads(0);
    let measured = 2.0 * (dim as f64).powi(3) / (wall_ms * 1e6);
    let floor = committed * (1.0 - GATE_TOLERANCE);
    println!(
        "gate: dense_matmul {dim}³ 1-thread  measured {measured:.2} GFLOP/s  \
         committed {committed:.2}  floor {floor:.2}"
    );
    if measured < floor {
        return Err(format!(
            "perf gate failed: dense_matmul measured {measured:.2} GFLOP/s, \
             below {floor:.2} ({:.0}% of the committed {committed:.2}) — \
             if the regression is intended, regenerate {baseline_path} with bench-json",
            100.0 * (1.0 - GATE_TOLERANCE)
        ));
    }
    Ok(())
}

fn sparse_matrix(m: usize, n: usize, seed: u64) -> CsrMatrix {
    let mut rng = seeded(seed);
    let mut d = gaussian_matrix(&mut rng, m, n);
    d.map_inplace(|x| if x.abs() > 1.5 { x } else { 0.0 });
    CsrMatrix::from_dense(&d, 0.0)
}

///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
fn main() -> Result<(), String> {
    let args = parse_args()?;
    if let Some(baseline) = &args.gate {
        return run_gate(baseline);
    }
    let (dim, reps, svd_mn, svd_k) = if args.smoke {
        (96usize, 3usize, (200usize, 100usize), 5usize)
    } else {
        (1000, 5, (5000, 2000), 50)
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "bench-json: host has {host_cpus} logical CPU(s); sweeping threads {THREAD_COUNTS:?}"
    );

    let mut records: Vec<Record> = Vec::new();

    // Dense matmul, dim³ problem: 2·n³ flops.
    let mut rng = seeded(0xbe7c);
    let a = gaussian_matrix(&mut rng, dim, dim);
    let b = gaussian_matrix(&mut rng, dim, dim);
    records.extend(sweep(
        "dense_matmul",
        format!("{dim}x{dim}x{dim}"),
        Some(2.0 * (dim as f64).powi(3)),
        reps,
        || {
            std::hint::black_box(a.matmul(&b).unwrap());
        },
    ));

    // Dense matvec on the same matrix: 2·n² flops.
    let x = vec![1.0; dim];
    let mut out = vec![0.0; dim];
    records.extend(sweep(
        "dense_matvec",
        format!("{dim}x{dim}"),
        Some(2.0 * (dim as f64).powi(2)),
        reps * 20,
        || {
            a.matvec_into(std::hint::black_box(&x), &mut out).unwrap();
        },
    ));

    // CSR matvec on a thresholded-Gaussian sparse matrix: 2·nnz flops.
    let (sm, sn) = svd_mn;
    let sp = sparse_matrix(sm, sn, 0x5eed);
    let sx = vec![1.0; sn];
    let mut sout = vec![0.0; sm];
    records.extend(sweep(
        "csr_matvec",
        format!("{sm}x{sn} nnz={}", sp.nnz()),
        Some(2.0 * sp.nnz() as f64),
        reps * 20,
        || {
            sp.matvec_into(std::hint::black_box(&sx), &mut sout)
                .unwrap();
        },
    ));

    // Rank-k Lanczos SVD of the sparse matrix. The exact flop count has no
    // closed form, so one counted run prices the matvecs (the dominant
    // cost) and that estimate is attached to every timed run.
    let counting = CountingOp {
        inner: &sp,
        applies: AtomicU64::new(0),
    };
    std::hint::black_box(lanczos_svd(&counting, svd_k, &LanczosOptions::default()).unwrap());
    let matvecs = counting.applies.load(Ordering::Relaxed);
    let lanczos_flops = matvecs as f64 * 2.0 * sp.nnz() as f64;
    records.extend(sweep(
        "lanczos_svd",
        format!("{sm}x{sn} k={svd_k} matvecs={matvecs}"),
        Some(lanczos_flops),
        reps.min(3),
        || {
            std::hint::black_box(lanczos_svd(&sp, svd_k, &LanczosOptions::default()).unwrap());
        },
    ));

    // Hand-rolled JSON: the workspace is dependency-free by policy, and the
    // schema is flat enough that formatting it directly stays readable.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_logical_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"thread_counts\": [1, 2, 4],");
    let _ = writeln!(
        json,
        "  \"note\": \"bitwise-identical outputs at every thread count; speedup requires >1 host CPU\","
    );
    json.push_str("  \"kernels\": [\n");
    for (i, r) in records.iter().enumerate() {
        let gflops = r.gflops.map_or("null".to_owned(), |g| format!("{g:.4}"));
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"wall_ms\": {:.4}, \"gflops\": {}, \"speedup_vs_1t\": {:.3}}}",
            r.kernel, r.shape, r.threads, r.wall_ms, gflops, r.speedup_vs_1t
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&args.out, &json).map_err(|e| format!("writing {}: {e}", args.out))?;
    println!("wrote {} ({} records)", args.out, records.len());
    Ok(())
}
