//! E11 — the two speedups of Section 5 head-to-head: random projection +
//! LSI (Theorem 5) vs the Frieze–Kannan–Vempala column-sampling Monte Carlo
//! algorithm \[15\], both measured by their excess Frobenius error over the
//! rank-k optimum at matched sketch sizes.

use lsi_linalg::LinearOperator;
use lsi_rp::{fkv_low_rank, two_step_lsi, ProjectionKind};

use crate::common::scaled_corpus;
use crate::e5_twostep::direct_error_sq_lanczos;

/// One row of the sketch-size sweep.
#[derive(Debug, Clone, Copy)]
pub struct E11Row {
    /// Sketch size: projection dimension `l` for RP, sample count `s` for
    /// FKV (matched so both methods look at comparable sketches).
    pub sketch: usize,
    /// Excess error fraction of the two-step RP pipeline.
    pub rp_excess: f64,
    /// Excess error fraction of FKV column sampling.
    pub fkv_excess: f64,
}

/// Sweep result.
pub struct E11Result {
    /// Rank k.
    pub k: usize,
    /// Direct rank-k error fraction, for reference.
    pub direct_error_frac: f64,
    /// One row per sketch size.
    pub rows: Vec<E11Row>,
}

impl E11Result {
    /// Renders a table.
    pub fn table(&self) -> String {
        let mut out = format!(
            "rank k = {}; direct rank-k error fraction {:.4}\n",
            self.k, self.direct_error_frac
        );
        out.push_str("sketch   RP+LSI excess   FKV sampling excess\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:>6} {:>15.4} {:>21.4}\n",
                r.sketch, r.rp_excess, r.fkv_excess
            ));
        }
        out
    }
}

/// Runs the sweep at corpus `scale` over matched sketch sizes.
///
/// # Panics
/// Panics if the experiment's hard-coded parameters become infeasible
/// (a programmer error caught immediately at startup, never a
/// data-dependent failure).
pub fn run(scale: f64, sketches: &[usize], seed: u64) -> E11Result {
    let exp = scaled_corpus(scale, 0.05, seed);
    let a = exp.td.counts();
    let k = exp.model.config().num_topics;
    let total = a.frobenius_sq();
    let direct = direct_error_sq_lanczos(a, k);

    let rows = sketches
        .iter()
        .filter(|&&s| s >= 2 * k && s <= a.nrows())
        .map(|&sketch| {
            let rp = two_step_lsi(
                a,
                k,
                sketch,
                ProjectionKind::OrthonormalSubspace,
                seed ^ 0x11,
            )
            .expect("validated dimensions");
            let fkv = fkv_low_rank(a, k, sketch, seed ^ 0x22).expect("validated dimensions");
            E11Row {
                sketch,
                rp_excess: (rp.error_sq - direct) / total,
                fkv_excess: (fkv.error_sq - direct) / total,
            }
        })
        .collect();

    E11Result {
        k,
        direct_error_frac: direct / total,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_methods_converge_with_sketch_size() {
        let r = run(0.2, &[16, 64], 71);
        assert_eq!(r.rows.len(), 2);
        let first = &r.rows[0];
        let last = &r.rows[1];
        assert!(
            last.rp_excess <= first.rp_excess + 0.02,
            "RP not converging: {} -> {}",
            first.rp_excess,
            last.rp_excess
        );
        assert!(
            last.fkv_excess <= first.fkv_excess + 0.02,
            "FKV not converging: {} -> {}",
            first.fkv_excess,
            last.fkv_excess
        );
        // At a generous sketch both are near the optimum (RP can go
        // negative: it keeps rank 2k).
        assert!(last.rp_excess < 0.08, "RP excess {}", last.rp_excess);
        assert!(last.fkv_excess < 0.15, "FKV excess {}", last.fkv_excess);
    }

    #[test]
    fn table_renders() {
        let r = run(0.12, &[20], 7);
        assert!(r.table().contains("FKV"));
    }
}
