//! E6 bench: direct LSI vs two-step as the vocabulary grows — the Section 5
//! running-time claim, measured by Criterion rather than ad-hoc timers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lsi_bench::common::make_corpus;
use lsi_corpus::SeparableConfig;
use lsi_linalg::lanczos::{lanczos_svd, LanczosOptions};
use lsi_linalg::CsrMatrix;
use lsi_rp::{two_step_lsi, ProjectionKind};

fn corpus(n_terms: usize) -> CsrMatrix {
    let k = 10;
    let config = SeparableConfig {
        universe_size: n_terms,
        num_topics: k,
        primary_terms_per_topic: n_terms / k,
        epsilon: 0.05,
        min_doc_len: 50,
        max_doc_len: 100,
    };
    make_corpus(config, 200, 11).td.counts().clone()
}

fn bench_e6(c: &mut Criterion) {
    let k = 10;
    let l = 60;
    let mut group = c.benchmark_group("e6_runtime");
    group.sample_size(10);
    for &n in &[1000usize, 2000, 4000] {
        let a = corpus(n);
        group.bench_with_input(BenchmarkId::new("direct", n), &a, |b, a| {
            b.iter(|| black_box(lanczos_svd(a, k, &LanczosOptions::default()).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("two_step", n), &a, |b, a| {
            b.iter(|| {
                black_box(two_step_lsi(a, k, l, ProjectionKind::OrthonormalSubspace, 5).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
