//! E5 bench: the two-step RP + LSI pipeline per projection dimension l,
//! against direct Lanczos LSI on the same matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lsi_bench::common::scaled_corpus;
use lsi_linalg::lanczos::{lanczos_svd, LanczosOptions};
use lsi_rp::{two_step_lsi, ProjectionKind};

fn bench_e5(c: &mut Criterion) {
    let exp = scaled_corpus(0.3, 0.05, 99);
    let a = exp.td.counts().clone();
    let k = exp.model.config().num_topics;

    let mut group = c.benchmark_group("e5_twostep");
    group.sample_size(10);

    group.bench_function("direct_lanczos", |b| {
        b.iter(|| black_box(lanczos_svd(&a, k, &LanczosOptions::default()).unwrap()))
    });

    for &l in &[2 * k, 4 * k, 8 * k] {
        group.bench_with_input(BenchmarkId::new("two_step", l), &l, |b, &l| {
            b.iter(|| {
                black_box(two_step_lsi(&a, k, l, ProjectionKind::OrthonormalSubspace, 3).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
