//! E10 bench: SVD backends head-to-head on the same corpus — the ablation
//! DESIGN.md calls out for the truncated-SVD algorithm choice.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lsi_bench::common::scaled_corpus;
use lsi_core::{LsiConfig, LsiIndex, SvdBackend};
use lsi_ir::Weighting;
use lsi_linalg::randomized::RandomizedSvdOptions;

fn bench_backends(c: &mut Criterion) {
    let exp = scaled_corpus(0.25, 0.05, 31);
    let k = exp.model.config().num_topics;
    let td = exp.td;

    let mut group = c.benchmark_group("e10_backends");
    group.sample_size(10);

    let configs: Vec<(&str, SvdBackend)> = vec![
        ("dense", SvdBackend::Dense),
        ("lanczos", SvdBackend::default()),
        (
            "randomized",
            SvdBackend::Randomized(RandomizedSvdOptions::default()),
        ),
    ];
    for (name, backend) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    LsiIndex::build(
                        &td,
                        LsiConfig {
                            rank: k,
                            weighting: Weighting::Count,
                            backend: backend.clone(),
                        },
                    )
                    .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
