//! Kernel microbenches for the linear-algebra substrate: dense SVD,
//! symmetric eigen, Lanczos, sparse matvec — the primitives every
//! experiment's cost decomposes into.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lsi_linalg::eigen::symmetric_eigen;
use lsi_linalg::lanczos::{lanczos_svd, LanczosOptions};
use lsi_linalg::rng::{gaussian_matrix, seeded};
use lsi_linalg::svd::svd;
use lsi_linalg::{CsrMatrix, LinearOperator};

fn bench_dense_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_svd");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let mut rng = seeded(n as u64);
        let a = gaussian_matrix(&mut rng, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| black_box(svd(a).unwrap()));
        });
    }
    group.finish();
}

fn bench_symmetric_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric_eigen");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let mut rng = seeded(n as u64);
        let g = gaussian_matrix(&mut rng, n, n);
        let sym = g.add(&g.transpose()).unwrap().scaled(0.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &sym, |b, a| {
            b.iter(|| black_box(symmetric_eigen(a, 0.0).unwrap()));
        });
    }
    group.finish();
}

fn bench_lanczos(c: &mut Criterion) {
    let mut group = c.benchmark_group("lanczos_svd_k10");
    group.sample_size(10);
    for &n in &[200usize, 400, 800] {
        let mut rng = seeded(n as u64);
        let mut dense = gaussian_matrix(&mut rng, n, n / 2);
        dense.map_inplace(|x| if x.abs() > 1.5 { x } else { 0.0 });
        let a = CsrMatrix::from_dense(&dense, 0.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| black_box(lanczos_svd(a, 10, &LanczosOptions::default()).unwrap()));
        });
    }
    group.finish();
}

fn bench_sparse_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_matvec");
    for &n in &[1000usize, 4000] {
        let mut rng = seeded(n as u64);
        let mut dense = gaussian_matrix(&mut rng, n, 500);
        dense.map_inplace(|x| if x.abs() > 2.0 { x } else { 0.0 });
        let a = CsrMatrix::from_dense(&dense, 0.0);
        let x = vec![1.0; 500];
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| black_box(a.apply(&x).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dense_svd,
    bench_symmetric_eigen,
    bench_lanczos,
    bench_sparse_matvec
);
criterion_main!(benches);
