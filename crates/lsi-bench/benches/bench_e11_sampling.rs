//! E11 bench: FKV column sampling vs two-step random projection at matched
//! sketch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lsi_bench::common::scaled_corpus;
use lsi_rp::{fkv_low_rank, two_step_lsi, ProjectionKind};

fn bench_e11(c: &mut Criterion) {
    let exp = scaled_corpus(0.3, 0.05, 71);
    let a = exp.td.counts().clone();
    let k = exp.model.config().num_topics;

    let mut group = c.benchmark_group("e11_sampling");
    group.sample_size(10);
    for &sketch in &[4 * k, 16 * k] {
        group.bench_with_input(BenchmarkId::new("rp_two_step", sketch), &sketch, |b, &s| {
            b.iter(|| {
                black_box(two_step_lsi(&a, k, s, ProjectionKind::OrthonormalSubspace, 1).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("fkv", sketch), &sketch, |b, &s| {
            b.iter(|| black_box(fkv_low_rank(&a, k, s, 1).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e11);
criterion_main!(benches);
