//! E14/E15 bench: document clustering (raw vs LSI space) and the
//! style-perturbation sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e14(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_clustering");
    group.sample_size(10);
    for &eps in &[0.05f64, 0.2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps-{eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let r = lsi_bench::e14_clustering::run(0.15, &[black_box(eps)], 101);
                    black_box(r.rows[0].lsi_ari)
                });
            },
        );
    }
    group.finish();
}

fn bench_e15(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_styles");
    group.sample_size(10);
    for &p in &[0.1f64, 0.5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p-{p}")),
            &p,
            |b, &p| {
                b.iter(|| {
                    let r = lsi_bench::e15_styles::run(4, &[black_box(p)], 111);
                    black_box(r.rows[0].delta)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e14, bench_e15);
criterion_main!(benches);
