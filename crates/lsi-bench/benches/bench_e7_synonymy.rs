//! E7 bench: the synonymy analysis pipeline (corpus with styled synonym
//! pair, dense eigendecomposition of A·Aᵀ, LSI comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e7(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_synonymy");
    group.sample_size(10);
    for &docs in &[100usize, 400] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("docs-{docs}")),
            &docs,
            |b, &docs| {
                b.iter(|| {
                    let r = lsi_bench::e7_synonymy::run(black_box(docs), 31);
                    black_box(r.report.lsi_cosine)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
