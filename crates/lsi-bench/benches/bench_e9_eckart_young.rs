//! E9 bench: the Eckart–Young challenge (SVD truncation vs competitor
//! families) per competitor count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e9(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_eckart_young");
    group.sample_size(10);
    for &n_comp in &[10usize, 40] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("competitors-{n_comp}")),
            &n_comp,
            |b, &n_comp| {
                b.iter(|| {
                    let r = lsi_bench::e9_eckart_young::run(3, black_box(n_comp), 51);
                    black_box(r.optimality_held())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e9);
criterion_main!(benches);
