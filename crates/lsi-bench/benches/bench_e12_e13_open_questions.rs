//! E12/E13 bench: the open-question experiments (topic mixtures, polysemy)
//! end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e12(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_mixtures");
    group.sample_size(10);
    for &j in &[1usize, 3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("topics-per-doc-{j}")),
            &j,
            |b, &j| {
                b.iter(|| {
                    let r = lsi_bench::e12_mixtures::run(&[black_box(j)], 60, 81);
                    black_box(r.rows[0].correlation)
                });
            },
        );
    }
    group.finish();
}

fn bench_e13(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_polysemy");
    group.sample_size(10);
    group.bench_function("docs-200", |b| {
        b.iter(|| {
            let r = lsi_bench::e13_polysemy::run(black_box(200), 91);
            black_box(r.disambiguated_lsi_ap)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_e12, bench_e13);
criterion_main!(benches);
