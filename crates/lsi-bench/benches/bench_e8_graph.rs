//! E8 bench: planted-partition generation + rank-k spectral recovery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e8(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_graph");
    group.sample_size(10);
    for &k in &[4usize, 8, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("blocks-{k}")),
            &k,
            |b, &k| {
                b.iter(|| {
                    let r = lsi_bench::e8_graph::run(black_box(k), 12, &[0.05], 21);
                    black_box(r.rows[0].ari)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
