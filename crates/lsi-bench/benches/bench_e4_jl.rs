//! E4 bench: random projection + distortion measurement per target
//! dimension l.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e4(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_jl");
    group.sample_size(10);
    for &l in &[25usize, 100, 400] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("l-{l}")),
            &l,
            |b, &l| {
                b.iter(|| {
                    let r = lsi_bench::e4_jl::run(0.3, &[black_box(l)], 60, 13);
                    black_box(r.rows.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
