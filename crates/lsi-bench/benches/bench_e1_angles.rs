//! E1 bench: the paper's angle experiment end-to-end (corpus generation,
//! LSI build, pairwise angle statistics) at several corpus scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_angles");
    group.sample_size(10);
    for &scale in &[0.1f64, 0.2, 0.4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("scale-{scale}")),
            &scale,
            |b, &scale| {
                b.iter(|| {
                    let r = lsi_bench::e1_angles::run_scaled(black_box(scale), 42);
                    black_box(r.intratopic_collapse_factor())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
