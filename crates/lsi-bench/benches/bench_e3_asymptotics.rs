//! E3 bench: skew measurement as document length grows — the full
//! sample-then-index-then-measure pipeline per point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e3(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_asymptotics");
    group.sample_size(10);
    for &len in &[25usize, 100, 400] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("len-{len}")),
            &len,
            |b, &len| {
                b.iter(|| {
                    let r = lsi_bench::e3_asymptotics::run(&[black_box(len)], &[], 5);
                    black_box(r.length_sweep[0].delta)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
