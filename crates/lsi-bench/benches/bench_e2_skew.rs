//! E2 bench: skew measurement across the ε sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_e2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_skew");
    group.sample_size(10);
    for &eps in &[0.0f64, 0.1, 0.3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps-{eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let r = lsi_bench::e2_skew::run(black_box(0.15), &[eps], 7);
                    black_box(r.rows[0].delta)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
