#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `lsi-lint` — the workspace conformance analyzer.
//!
//! The reproduction's credibility rests on invariants that used to be
//! enforced only by convention: every stochastic function is seed-threaded,
//! experiment outputs are bitwise deterministic at any `LSI_THREADS` value,
//! hot kernels route through `lsi_linalg::parallel`, and panics are
//! documented preconditions rather than control flow. One unseeded RNG or
//! wall-clock read silently invalidates every recorded table in
//! EXPERIMENTS.md. This crate turns those rules into a machine-checked
//! gate: a line/token-level static-analysis pass over all workspace `.rs`
//! files with named, numbered lints, file:line diagnostics, deny/warn
//! severities, and an inline justification-carrying escape hatch.
//!
//! # Rules
//!
//! | id | severity | enforces |
//! |----|----------|----------|
//! | `C1-unpolled-hot-loop` | warn | fns taking a `CancelToken` that loop must poll it |
//! | `D1-nondeterminism` | deny | no wall-clock/process-id reads outside lsi-serve, benches, tests, examples |
//! | `D2-unseeded-rng` | deny | RNG-constructing fns take `seed: u64` or `&mut impl Rng` |
//! | `D3-hasher-order` | deny | no unordered `HashMap`/`HashSet` iteration feeding ordered output |
//! | `E1-panic-policy` | deny | `unwrap`/`expect`/`panic!` only under a documented `# Panics` contract |
//! | `K1-thread-dependent-blocking` | warn | GEMM blocking geometry derives from sizes only |
//! | `L1-lock-order-cycle` | warn | Mutex/RwLock acquisition order forms a DAG |
//! | `M1-arrival-order-merge` | warn | cross-worker merges reduce in slot order, never arrival order |
//! | `P1-raw-threads` | deny | threads only in `lsi_linalg::parallel` + serve worker pool |
//! | `P2-thread-dependent-chunking` | warn | chunk boundaries never derive from thread counts |
//! | `R1-reflector` | warn | Householder reflectors come from `vector::householder_reflector` |
//! | `S1-unsynced-write` | deny | created/renamed files reach `sync_all`/`sync_parent_dir`, here or via callers |
//! | `S2-unchecked-length-alloc` | warn | readers bound decoded lengths before allocating |
//! | `T1-unbounded-socket-read` | warn | socket/child-pipe reads carry a read timeout |
//! | `U1-unsafe` | deny | `unsafe` only on the explicit allowlist |
//! | `W1-apply-before-journal` | deny | durable mutations journal-append (fsync) before the in-memory apply |
//!
//! `S1`, `W1`, `L1`, and `C1` are workspace rules since PR 9: they run over
//! the resolved call graph ([`callgraph`]) with summary-based dataflow, so
//! helper-delegated syncs/polls/appends are recognized and lock-order edges
//! cross fn boundaries. The rest are per-file token rules.
//!
//! Malformed `lsi-lint:` directives surface as deny-level `A0-allow-syntax`
//! findings so a typo can't silently disable a rule.
//!
//! # Escape hatch
//!
//! ```text
//! let t = Instant::now(); // lsi-lint: allow(D1-nondeterminism, "deadline clock, not experiment state")
//! ```
//!
//! A standalone directive comment applies to the next code line; a trailing
//! one to its own line. The justification string is mandatory.
//!
//! # Example
//!
//! ```
//! use lsi_lint::{lint_source, Severity};
//! let findings = lint_source("crates/x/src/lib.rs", "fn f() { let t = Instant::now(); }\n");
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "D1-nondeterminism");
//! assert_eq!(findings[0].severity, Severity::Deny);
//! ```

pub mod callgraph;
pub mod context;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod symbols;

pub use callgraph::Workspace;
pub use report::{render_json, render_text, Finding, Severity};
pub use sarif::render_sarif;

use context::FileContext;
use std::path::{Path, PathBuf};

/// Lints a set of in-memory source files as one workspace: per-file rules
/// run on each file, then the call graph is built over all of them and the
/// workspace rules (interprocedural S1/W1/L1/C1) run once. Findings come
/// back sorted by (path, line, rule) and deduped.
pub fn lint_sources(files: &[(String, String)]) -> Vec<Finding> {
    let ctxs: Vec<FileContext> = files
        .iter()
        .map(|(rel, src)| FileContext::build(rel, src))
        .collect();
    let mut findings = Vec::new();
    let per_file = rules::registry();
    for ctx in &ctxs {
        findings.extend(ctx.meta_findings.clone());
        for rule in &per_file {
            rule.check(ctx, &mut findings);
        }
    }
    let ws = Workspace::build(ctxs);
    for rule in rules::workspace_registry() {
        rule.check(&ws, &mut findings);
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.path == b.path);
    findings
}

/// Lints one in-memory source file at workspace-relative path `rel` — a
/// single-file workspace, so interprocedural rules see only same-file
/// helpers (which is exactly what fixtures exercise).
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(rel.to_string(), src.to_string())])
}

/// Lints the file at `path`, reporting it relative to `root`.
///
/// # Errors
/// Returns the I/O error when the file cannot be read.
pub fn lint_file(root: &Path, path: &Path) -> std::io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(lint_source(&rel, &src))
}

/// Reads every file in `files` and lints them as one workspace (see
/// [`lint_sources`]), reporting paths relative to `root`.
///
/// # Errors
/// Returns the first I/O error encountered while reading.
pub fn lint_files(root: &Path, files: &[PathBuf]) -> std::io::Result<Vec<Finding>> {
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, src));
    }
    Ok(lint_sources(&sources))
}

/// Total `lsi-lint: allow` directives across a set of files, for the
/// `--allow-budget` gate.
///
/// # Errors
/// Returns the first I/O error encountered while reading.
pub fn count_allows(root: &Path, files: &[PathBuf]) -> std::io::Result<usize> {
    let mut count = 0usize;
    for path in files {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        count += FileContext::build(&rel, &src).allows.len();
    }
    Ok(count)
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".claude"];

/// Collects every workspace `.rs` file under `root`, skipping `target/`,
/// `vendor/`, and this crate's own `fixtures/` tree (fixtures deliberately
/// violate the rules; lint them by passing the path explicitly).
pub fn discover_workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    walk(root, &mut files, /* skip_fixtures = */ true);
    files.sort();
    files
}

/// Collects `.rs` files under an explicitly named directory — fixtures are
/// not skipped, so a seeded-violation tree can be linted for CI checks.
pub fn collect_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    walk(dir, &mut files, /* skip_fixtures = */ false);
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>, skip_fixtures: bool) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || (skip_fixtures && name == "fixtures") {
                continue;
            }
            walk(&path, out, skip_fixtures);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Finds the workspace root by ascending from `start` until a directory
/// holding a `Cargo.toml` with a `[workspace]` table appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_has_no_findings() {
        let src = "//! Docs.\npub fn add(a: u64, b: u64) -> u64 {\n    a + b\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt_from_panic_policy() {
        let src = "pub fn id(x: u64) -> u64 { x }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \"7\".parse::<u64>().unwrap();\n    }\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn string_contents_never_fire() {
        let src =
            "pub fn msg() -> &'static str {\n    \"Instant::now() unsafe thread::spawn\"\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }
}
