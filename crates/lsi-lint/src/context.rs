//! Per-file analysis context: sanitized lines, `#[cfg(test)]` regions,
//! function spans with their doc-comment metadata, and parsed
//! `lsi-lint: allow(...)` directives.

use crate::lexer::{self, is_ident_byte, Comment};
use crate::report::Finding;

/// Broad classification of a source file, derived from its workspace path.
/// Rules consult the role to decide whether they apply at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A library source file (`crates/*/src/**`, root `src/`).
    LibSrc,
    /// A binary source file (`src/main.rs`, `src/bin/*`).
    Bin,
    /// An example (`examples/*`).
    Example,
    /// An integration test or bench (`tests/*`, `benches/*`): every line is
    /// treated as test code.
    TestOrBench,
}

/// A function item located in the sanitized source.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based line of the body's closing `}` (equals `start_line` for
    /// bodyless trait-method declarations).
    pub end_line: usize,
    /// Signature text from `fn` to the body `{` (generics, params, return
    /// type, where clause), whitespace-normalized.
    pub signature: String,
    /// True when the doc comment block above the item has a `# Panics`
    /// section.
    pub has_panics_doc: bool,
}

/// One parsed `// lsi-lint: allow(<rule>, "<reason>")` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule id as written (full id like `D1-nondeterminism`, or the bare
    /// prefix like `D1`).
    pub rule: String,
    /// The mandatory justification string.
    pub reason: String,
    /// 1-based line the directive suppresses findings on.
    pub applies_to: usize,
}

/// Everything a rule needs to analyze one file.
#[derive(Debug)]
pub struct FileContext {
    /// Workspace-relative path with forward slashes (e.g.
    /// `crates/lsi-core/src/index.rs`).
    pub rel: String,
    /// File classification.
    pub role: Role,
    /// Sanitized source lines, index 0 = line 1.
    pub lines: Vec<String>,
    /// Original source lines (for finding snippets).
    pub raw_lines: Vec<String>,
    /// `test_lines[i]` is true when line `i + 1` sits in a `#[cfg(test)]`
    /// item, a `mod tests`, a `#[test]` fn, or a tests/benches file.
    pub test_lines: Vec<bool>,
    /// All function spans, in source order.
    pub fns: Vec<FnSpan>,
    /// Parsed allow directives.
    pub allows: Vec<Allow>,
    /// Findings produced while building the context itself (malformed allow
    /// directives).
    pub meta_findings: Vec<Finding>,
}

impl FileContext {
    /// Builds the context for `src` at workspace-relative path `rel`.
    pub fn build(rel: &str, src: &str) -> FileContext {
        let lexed = lexer::lex(src);
        let role = classify(rel);
        let raw_lines: Vec<String> = src.lines().map(str::to_string).collect();
        let lines: Vec<String> = lexed.sanitized.lines().map(str::to_string).collect();
        let n = raw_lines.len().max(lines.len());
        let mut test_lines = vec![role == Role::TestOrBench; n + 1];
        if role != Role::TestOrBench {
            mark_test_regions(&lines, &mut test_lines);
        }
        let fns = find_fns(&lines, &raw_lines);
        let mut meta_findings = Vec::new();
        let allows = parse_allows(rel, &lexed.comments, &raw_lines, &mut meta_findings);
        FileContext {
            rel: rel.to_string(),
            role,
            lines,
            raw_lines,
            test_lines,
            fns,
            allows,
            meta_findings,
        }
    }

    /// True when 1-based `line` is inside test code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }

    /// Returns the allow directive covering `rule_id` on 1-based `line`, if
    /// any. Directives match on the full id or its short prefix (`D1`).
    pub fn allowed(&self, rule_id: &str, line: usize) -> Option<&Allow> {
        let short = rule_id.split('-').next().unwrap_or(rule_id);
        self.allows
            .iter()
            .find(|a| a.applies_to == line && (a.rule == rule_id || a.rule == short))
    }

    /// The innermost function span containing 1-based `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.start_line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.start_line)
    }

    /// The original source line (trimmed) for snippets; empty when out of
    /// range.
    pub fn snippet(&self, line: usize) -> String {
        self.raw_lines
            .get(line.wrapping_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// Classifies a workspace-relative path.
fn classify(rel: &str) -> Role {
    let p = rel.replace('\\', "/");
    if p.contains("/tests/")
        || p.starts_with("tests/")
        || p.contains("/benches/")
        || p.starts_with("benches/")
    {
        Role::TestOrBench
    } else if p.contains("/examples/") || p.starts_with("examples/") {
        Role::Example
    } else if p.ends_with("/main.rs") || p.contains("/src/bin/") {
        Role::Bin
    } else {
        Role::LibSrc
    }
}

/// Marks lines covered by `#[cfg(test)]` items, `#[test]` fns, and
/// `mod tests` bodies. Works on sanitized lines: attributes and braces are
/// code, so brace-matching is reliable.
fn mark_test_regions(lines: &[String], test_lines: &mut [bool]) {
    // Flatten with line breaks so byte offsets map back to lines.
    let mut offsets = Vec::with_capacity(lines.len());
    let mut text = String::new();
    for l in lines {
        offsets.push(text.len());
        text.push_str(l);
        text.push('\n');
    }
    let line_of = |pos: usize| -> usize {
        match offsets.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i, // i is the insertion point; the line is i (1-based)
        }
    };
    let bytes = text.as_bytes();
    let mut i = 0usize;
    // Stack of open braces; `true` entries open a test region.
    let mut stack: Vec<(bool, usize)> = Vec::new();
    // Set when a test-ish attribute or `mod tests` header was seen and its
    // opening `{` (or terminating `;`) is still ahead.
    let mut pending: Option<usize> = None;

    while i < bytes.len() {
        match bytes[i] {
            b'#' if bytes.get(i + 1) == Some(&b'[')
                || (bytes.get(i + 1) == Some(&b'!') && bytes.get(i + 2) == Some(&b'[')) =>
            {
                let open = if bytes[i + 1] == b'[' { i + 1 } else { i + 2 };
                let mut depth = 0usize;
                let mut j = open;
                while j < bytes.len() {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let attr = &text[open..j.min(text.len())];
                if attr_is_testish(attr) && bytes.get(i + 1) == Some(&b'[') {
                    pending = Some(line_of(i));
                }
                i = j + 1;
            }
            b'm' if word_at(bytes, i, b"mod") => {
                // `mod tests`/`mod test` headers open a test region even
                // without a cfg attribute.
                let mut j = i + 3;
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                let start = j;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    j += 1;
                }
                let name = &text[start..j];
                if name == "tests" || name == "test" {
                    pending = Some(line_of(i));
                }
                i = j;
            }
            b'{' => {
                let is_test_open = pending.take().is_some();
                stack.push((is_test_open, line_of(i)));
                if is_test_open || stack.iter().any(|&(t, _)| t) {
                    // Marking happens on close; nothing to do here.
                }
                i += 1;
            }
            b'}' => {
                if let Some((was_test, open_line)) = stack.pop() {
                    if was_test {
                        let close_line = line_of(i);
                        for l in open_line..=close_line {
                            if l < test_lines.len() {
                                test_lines[l] = true;
                            }
                        }
                    }
                }
                i += 1;
            }
            b';' => {
                // An attribute on a bodyless item (`#[cfg(test)] use …;`).
                if let Some(attr_line) = pending.take() {
                    let l = line_of(i);
                    for k in attr_line..=l {
                        if k < test_lines.len() {
                            test_lines[k] = true;
                        }
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    // Also mark the attribute line itself for open-brace regions: walk again
    // is unnecessary — the `{` handler marks from the open line, and the
    // attribute sits at most a few lines above; rules match code tokens, and
    // attributes carry none of the flagged patterns.
}

/// True when an attribute body (text between `#[` and `]`) marks test-only
/// code: `test`, `cfg(test)`, `cfg(all(test, …))`, `bench`.
fn attr_is_testish(attr: &str) -> bool {
    let mut prev_ident = false;
    let bytes = attr.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if is_ident_byte(bytes[i]) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            let word = &attr[start..i];
            if !prev_ident && (word == "test" || word == "tests" || word == "bench") {
                return true;
            }
            prev_ident = true;
        } else {
            prev_ident = false;
            i += 1;
        }
    }
    false
}

/// True when `bytes[i..]` is the whole word `word` (ident-boundary on both
/// sides).
fn word_at(bytes: &[u8], i: usize, word: &[u8]) -> bool {
    if i + word.len() > bytes.len() || &bytes[i..i + word.len()] != word {
        return false;
    }
    let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
    let after_ok = i + word.len() >= bytes.len() || !is_ident_byte(bytes[i + word.len()]);
    before_ok && after_ok
}

/// Locates every `fn` item: name, signature, body span, and whether the doc
/// block above it has a `# Panics` section.
fn find_fns(lines: &[String], raw_lines: &[String]) -> Vec<FnSpan> {
    let mut offsets = Vec::with_capacity(lines.len());
    let mut text = String::new();
    for l in lines {
        offsets.push(text.len());
        text.push_str(l);
        text.push('\n');
    }
    let line_of = |pos: usize| -> usize {
        match offsets.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    };
    let bytes = text.as_bytes();
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'f' && word_at(bytes, i, b"fn") {
            let kw = i;
            let mut j = i + 2;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            // `fn(` with no name is a fn-pointer type, not an item.
            let name_start = j;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            if j == name_start {
                i += 2;
                continue;
            }
            let name = text[name_start..j].to_string();
            // Scan to the body `{` or a terminating `;`. Parens and brackets
            // in the signature are skipped wholesale; `{` can't occur inside
            // a signature in this codebase's (non-exotic) Rust.
            let mut k = j;
            let mut paren = 0i32;
            let sig_end;
            loop {
                if k >= bytes.len() {
                    sig_end = None;
                    break;
                }
                match bytes[k] {
                    b'(' | b'[' => paren += 1,
                    b')' | b']' => paren -= 1,
                    b'{' if paren == 0 => {
                        sig_end = Some((k, true));
                        break;
                    }
                    b';' if paren == 0 => {
                        sig_end = Some((k, false));
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let Some((body_open, has_body)) = sig_end else {
                break;
            };
            let signature = text[kw..body_open]
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ");
            let start_line = line_of(kw);
            let end_line = if has_body {
                // Match braces to the body close.
                let mut depth = 0i32;
                let mut m = body_open;
                let mut close = body_open;
                while m < bytes.len() {
                    match bytes[m] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                close = m;
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                line_of(close)
            } else {
                start_line
            };
            let has_panics_doc = doc_has_panics(raw_lines, start_line);
            fns.push(FnSpan {
                name,
                start_line,
                end_line,
                signature,
                has_panics_doc,
            });
            i = body_open + 1;
        } else {
            i += 1;
        }
    }
    fns
}

/// Walks upward from the line above the `fn` keyword through the item's doc
/// comments and attributes, returning true when a `/// # Panics` (or block
/// doc `# Panics`) line is present.
fn doc_has_panics(raw_lines: &[String], fn_line: usize) -> bool {
    let mut l = fn_line.saturating_sub(1); // index of the line above, 0-based+1
                                           // raw_lines is 0-based: line `fn_line` is raw_lines[fn_line - 1].
    while l >= 1 {
        let t = raw_lines[l - 1].trim();
        let is_doc = t.starts_with("///")
            || t.starts_with("//!")
            || t.starts_with('*')
            || t.starts_with("/**");
        let is_attr =
            t.starts_with("#[") || t.starts_with(")]") || t.ends_with(")]") || t.ends_with(']');
        let is_vis = t == "pub" || t.starts_with("pub(");
        if is_doc {
            if t.contains("# Panics") {
                return true;
            }
        } else if !(is_attr || is_vis || t.is_empty()) {
            // Not part of this item's header.
            return false;
        }
        if l == 1 {
            break;
        }
        l -= 1;
    }
    false
}

/// Parses allow directives out of the comment stream. Malformed directives
/// (missing rule or missing/empty reason) become deny-level meta findings.
fn parse_allows(
    rel: &str,
    comments: &[Comment],
    raw_lines: &[String],
    meta: &mut Vec<Finding>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        // Directives are plain `//` comments whose text begins with
        // `lsi-lint:`. Doc comments (`///`, `//!`, `/**`) mentioning the
        // syntax are prose, not directives.
        if c.text.starts_with("///") || c.text.starts_with("//!") || c.text.starts_with("/*") {
            continue;
        }
        let body = c.text.trim_start_matches('/').trim_start();
        let Some(rest) = body.strip_prefix("lsi-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow") else {
            meta.push(Finding::meta(
                rel,
                c.line,
                format!("malformed lsi-lint directive: expected `allow(<rule>, \"<reason>\")`, got `{}`", rest.trim()),
            ));
            continue;
        };
        let args = args.trim_start();
        let parsed = parse_allow_args(args);
        match parsed {
            Some((rule, reason)) if !reason.trim().is_empty() => {
                let applies_to = if c.has_code_before {
                    c.line
                } else {
                    next_code_line(raw_lines, c.line)
                };
                allows.push(Allow {
                    rule,
                    reason,
                    applies_to,
                });
            }
            Some((rule, _)) => {
                meta.push(Finding::meta(
                    rel,
                    c.line,
                    format!("lsi-lint: allow({rule}) needs a non-empty justification string"),
                ));
            }
            None => {
                meta.push(Finding::meta(
                    rel,
                    c.line,
                    "malformed lsi-lint allow: expected `allow(<rule>, \"<reason>\")`".to_string(),
                ));
            }
        }
    }
    allows
}

/// Parses `(<rule>, "<reason>")`, returning the rule id and reason.
fn parse_allow_args(args: &str) -> Option<(String, String)> {
    let inner = args.strip_prefix('(')?;
    let comma = inner.find(',')?;
    let rule = inner[..comma].trim().to_string();
    if rule.is_empty() || !rule.bytes().all(|b| is_ident_byte(b) || b == b'-') {
        return None;
    }
    let after = inner[comma + 1..].trim_start();
    let q1 = after.find('"')?;
    let q2 = after[q1 + 1..].find('"')?;
    let reason = after[q1 + 1..q1 + 1 + q2].to_string();
    Some((rule, reason))
}

/// First line at or after `after` (exclusive) holding real code — the line a
/// standalone allow directive suppresses.
fn next_code_line(raw_lines: &[String], after: usize) -> usize {
    let mut l = after + 1;
    while l <= raw_lines.len() {
        let t = raw_lines[l - 1].trim();
        if !t.is_empty() && !t.starts_with("//") {
            return l;
        }
        l += 1;
    }
    after
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Severity;

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "pub fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\n";
        let ctx = FileContext::build("crates/x/src/lib.rs", src);
        assert!(!ctx.is_test_line(1));
        assert!(ctx.is_test_line(4));
    }

    #[test]
    fn fn_span_and_panics_doc() {
        let src = "/// Does a thing.\n///\n/// # Panics\n/// Panics when empty.\npub fn a(x: &[f64]) -> f64 {\n    x.first().unwrap() + 1.0\n}\nfn b() {\n    c();\n}\n";
        let ctx = FileContext::build("crates/x/src/lib.rs", src);
        let a = ctx.enclosing_fn(6).expect("fn a covers line 6");
        assert_eq!(a.name, "a");
        assert!(a.has_panics_doc);
        let b = ctx.enclosing_fn(9).expect("fn b covers line 9");
        assert_eq!(b.name, "b");
        assert!(!b.has_panics_doc);
    }

    #[test]
    fn allow_directive_attaches_to_next_line() {
        let src = "// lsi-lint: allow(D1, \"bench timing\")\nlet t = now();\nlet u = now(); // lsi-lint: allow(D1-nondeterminism, \"same line\")\n";
        let ctx = FileContext::build("crates/x/src/lib.rs", src);
        assert!(ctx.allowed("D1-nondeterminism", 2).is_some());
        assert!(ctx.allowed("D1-nondeterminism", 3).is_some());
        assert!(ctx.allowed("D2-unseeded-rng", 2).is_none());
        assert!(ctx.meta_findings.is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_meta_finding() {
        let src = "// lsi-lint: allow(D1, \"\")\nlet t = now();\n";
        let ctx = FileContext::build("crates/x/src/lib.rs", src);
        assert_eq!(ctx.meta_findings.len(), 1);
        assert_eq!(ctx.meta_findings[0].severity, Severity::Deny);
    }

    #[test]
    fn roles_classify_paths() {
        assert_eq!(classify("crates/lsi-core/src/index.rs"), Role::LibSrc);
        assert_eq!(
            classify("crates/lsi-linalg/tests/alloc_guard.rs"),
            Role::TestOrBench
        );
        assert_eq!(classify("examples/quickstart.rs"), Role::Example);
        assert_eq!(classify("crates/lsi-cli/src/main.rs"), Role::Bin);
        assert_eq!(classify("crates/lsi-bench/src/bin/reproduce.rs"), Role::Bin);
    }
}
