//! Per-file symbol extraction for the interprocedural engine: for every
//! function found by [`FileContext`], the module path it lives in, the
//! `impl` self-type enclosing it, the call sites inside its body, the
//! Mutex/RwLock acquisition sites, and the local dataflow facts the summary
//! pass propagates through the call graph.
//!
//! Everything here works on the sanitized token stream (comments and string
//! contents already blanked), so matching is purely structural. The
//! extraction is best-effort by design — trait-object dispatch, turbofish
//! chains, and macro-generated items are invisible — and the analyses built
//! on top are written so that a missed edge degrades toward silence, never
//! toward a spurious deny.

use crate::context::FileContext;
use crate::lexer::is_ident_byte;

/// Local (non-transitive) dataflow facts, one bit each. The summary pass in
/// [`crate::callgraph`] ORs these along call edges to a fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Facts(pub u16);

impl Facts {
    /// Calls `sync_all` or `sync_parent_dir` (durability barrier).
    pub const SYNC: u16 = 1 << 0;
    /// Calls `File::create` or `fs::rename` (makes crash-visible state).
    pub const WRITE: u16 = 1 << 1;
    /// Appends (and fsyncs) a write-ahead journal frame.
    pub const APPEND: u16 = 1 << 2;
    /// Applies a mutation to the in-memory index (`index.add_document(…)`
    /// and friends) without going through a journal.
    pub const APPLY: u16 = 1 << 3;
    /// Polls a `CancelToken` (`is_cancelled()` / `.check()`).
    pub const POLL: u16 = 1 << 4;

    /// True when `bit` is set.
    pub fn has(self, bit: u16) -> bool {
        self.0 & bit != 0
    }
    /// Sets `bit`.
    pub fn set(&mut self, bit: u16) {
        self.0 |= bit;
    }
    /// ORs another fact set in, returning whether anything changed.
    pub fn merge(&mut self, other: Facts) -> bool {
        let before = self.0;
        self.0 |= other.0;
        self.0 != before
    }
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(…)` — a bare path, resolved same-file first.
    Bare,
    /// `a::b::f(…)` — the qualifier is the segment just before the name
    /// (a module or a type).
    Qualified(String),
    /// `recv.f(…)` — a method call; `recv` is the last identifier of the
    /// receiver chain when one is visible (`self.cells[i].f()` → `cells`).
    Method(Option<String>),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name as written.
    pub name: String,
    /// Resolution hint.
    pub kind: CallKind,
    /// 1-based source line of the call.
    pub line: usize,
}

/// One Mutex/RwLock acquisition (`.lock()`, `.read()`, `.write()` with
/// empty argument lists).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Lock identity: the last identifier of the receiver chain
    /// (`self.cells[i].write()` → `cells`). Best-effort; unknown receivers
    /// (chained call results) are skipped entirely.
    pub name: String,
    /// 1-based source line.
    pub line: usize,
    /// Brace depth (relative to the fn body) at the acquisition.
    pub depth: usize,
    /// True when the guard is bound by a plain `let g = recv.lock()…;`
    /// statement and therefore lives until its enclosing block closes.
    /// False for temporaries consumed within their own statement.
    pub held: bool,
    /// Ordinal of this site in the fn's event stream (shared with calls),
    /// used to interleave lock and call events chronologically.
    pub order: usize,
    /// 1-based line where the guard's scope ends: the closing `}` of its
    /// enclosing block for held guards, the acquisition line itself for
    /// temporaries. Lock-order analysis treats the guard as live on lines
    /// `line..=scope_end_line`.
    pub scope_end_line: usize,
    /// True for `.lock()` / `.write()` (exclusive acquisition); false for
    /// `.read()`. Two shared acquisitions of the same lock never form a
    /// same-lock hazard on their own.
    pub exclusive: bool,
}

/// One function with everything the interprocedural pass needs.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Index into `FileContext::fns`.
    pub span_idx: usize,
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl` block, if any (`impl Journal` /
    /// `impl Rule for S1UnsyncedWrite` → `Journal` / `S1UnsyncedWrite`).
    pub self_type: Option<String>,
    /// Whitespace-normalized signature (from the span).
    pub signature: String,
    /// 1-based body span.
    pub start_line: usize,
    /// 1-based body span end.
    pub end_line: usize,
    /// Call sites in source order.
    pub calls: Vec<Call>,
    /// Lock acquisitions in source order.
    pub locks: Vec<LockSite>,
    /// Local dataflow facts.
    pub facts: Facts,
    /// Lines (1-based) holding a `for`/`while`/`loop` keyword — candidate
    /// hot loops for the cancellation rule.
    pub loop_lines: Vec<usize>,
}

/// All symbols of one file.
#[derive(Debug, Clone)]
pub struct FileSymbols {
    /// Module path: crate name (with `-` mapped to `_`) followed by the
    /// file's module segments (`crates/lsi-core/src/journal.rs` →
    /// `["lsi_core", "journal"]`).
    pub module: Vec<String>,
    /// Functions in source order.
    pub fns: Vec<FnSym>,
}

/// Tokens whose presence sets [`Facts::SYNC`].
pub(crate) const SYNC_TOKENS: &[&str] = &["sync_all(", "sync_parent_dir("];
/// Tokens whose presence sets [`Facts::WRITE`].
pub(crate) const WRITE_TOKENS: &[&str] = &["File::create(", "fs::rename("];
/// Tokens whose presence sets [`Facts::APPEND`] — a receiver named
/// `journal`/`wal`, or an `.append` fed a `MutationRecord`, makes the
/// intent unambiguous at token level.
pub(crate) const APPEND_TOKENS: &[&str] = &[
    "journal.append(",
    "wal.append(",
    ".append(&MutationRecord::",
];
/// Tokens whose presence sets [`Facts::APPLY`]: a mutating call on a
/// receiver chain ending in `index` — the raw, unjournaled apply path.
pub(crate) const APPLY_TOKENS: &[&str] = &[
    "index.add_document(",
    "index.add_document_vector(",
    "index.retire_document(",
];
/// Tokens whose presence sets [`Facts::POLL`].
pub(crate) const POLL_TOKENS: &[&str] = &["is_cancelled(", ".check()"];

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "move", "as", "in", "else",
    "unsafe", "impl", "where", "dyn", "ref", "mut", "pub", "use", "mod", "box", "await",
];

impl FileSymbols {
    /// Extracts the symbols of one file.
    pub fn extract(ctx: &FileContext) -> FileSymbols {
        let module = module_path(&ctx.rel);
        let impls = find_impl_spans(&ctx.lines);
        let mut fns = Vec::new();
        for (span_idx, span) in ctx.fns.iter().enumerate() {
            let self_type = impls
                .iter()
                .filter(|im| im.start_line <= span.start_line && span.end_line <= im.end_line)
                .min_by_key(|im| im.end_line - im.start_line)
                .map(|im| im.self_type.clone());
            let mut sym = FnSym {
                span_idx,
                name: span.name.clone(),
                self_type,
                signature: span.signature.clone(),
                start_line: span.start_line,
                end_line: span.end_line,
                calls: Vec::new(),
                locks: Vec::new(),
                facts: Facts::default(),
                loop_lines: Vec::new(),
            };
            // Inner fns (closures are fine, nested `fn` items get their own
            // span) would double-count; scan only lines the innermost
            // enclosing fn of which is this one.
            scan_body(ctx, &mut sym);
            fns.push(sym);
        }
        FileSymbols { module, fns }
    }
}

/// Derives the module path from a workspace-relative file path.
fn module_path(rel: &str) -> Vec<String> {
    let mut out = Vec::new();
    let p = rel.replace('\\', "/");
    let parts: Vec<&str> = p.split('/').collect();
    // `crates/<crate>/src/...` (or any other subtree of a crate, e.g.
    // fixtures linted by explicit path) or root `src/...`.
    let (krate, rest) = if parts.len() >= 2 && parts[0] == "crates" {
        let rest = &parts[2..];
        let rest = if rest.first() == Some(&"src") {
            &rest[1..]
        } else {
            rest
        };
        (parts[1], rest)
    } else if parts.first() == Some(&"src") {
        ("lsi", &parts[1..])
    } else {
        (parts.first().copied().unwrap_or(""), &parts[1..])
    };
    out.push(krate.replace('-', "_"));
    for (i, seg) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if last {
            let stem = seg.strip_suffix(".rs").unwrap_or(seg);
            if stem != "lib" && stem != "main" && stem != "mod" {
                out.push(stem.replace('-', "_"));
            }
        } else if *seg != "bin" {
            out.push(seg.replace('-', "_"));
        }
    }
    out
}

/// An `impl` block span with its self type.
struct ImplSpan {
    self_type: String,
    start_line: usize,
    end_line: usize,
}

/// Locates `impl` blocks and their self types in the sanitized lines.
fn find_impl_spans(lines: &[String]) -> Vec<ImplSpan> {
    let (text, offsets) = join(lines);
    let bytes = text.as_bytes();
    let line_of = |pos: usize| line_of(&offsets, pos);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'i' && word_at(bytes, i, b"impl") {
            let start = i;
            let mut j = i + 4;
            // Skip generic parameters `<…>` (balanced).
            j = skip_ws(bytes, j);
            if bytes.get(j) == Some(&b'<') {
                j = skip_angles(bytes, j);
            }
            // Scan the header up to `{` or `;`, remembering the last path
            // segment seen and whether a `for` clause overrode it.
            let mut last_seg = String::new();
            let mut seen_for = false;
            let mut after_for_seg = String::new();
            while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
                if is_ident_byte(bytes[j]) && !bytes[j].is_ascii_digit() {
                    let s = j;
                    while j < bytes.len() && is_ident_byte(bytes[j]) {
                        j += 1;
                    }
                    let word = &text[s..j];
                    if word == "for" {
                        seen_for = true;
                    } else if word != "where" && word != "dyn" {
                        if seen_for {
                            after_for_seg = word.to_string();
                        } else {
                            last_seg = word.to_string();
                        }
                    }
                    // `where` clauses can mention many types; stop updating
                    // once one starts.
                    if word == "where" {
                        break;
                    }
                } else if bytes[j] == b'<' {
                    j = skip_angles(bytes, j);
                } else {
                    j += 1;
                }
            }
            while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
                j += 1;
            }
            if bytes.get(j) == Some(&b'{') {
                let close = match_brace(bytes, j);
                let ty = if seen_for { after_for_seg } else { last_seg };
                if !ty.is_empty() {
                    out.push(ImplSpan {
                        self_type: ty,
                        start_line: line_of(start),
                        end_line: line_of(close),
                    });
                }
                i = j + 1;
                continue;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Scans one fn body for calls, locks, facts, and loop lines.
fn scan_body(ctx: &FileContext, sym: &mut FnSym) {
    let lines = &ctx.lines;
    let lo = sym.start_line;
    let hi = sym.end_line.min(lines.len());
    let body: Vec<String> = lines[lo - 1..hi].to_vec();
    let (text, offsets) = join(&body);
    let bytes = text.as_bytes();
    let to_line = |pos: usize| lo + line_of(&offsets, pos) - 1;

    // Find the body's opening brace so signature tokens (e.g. a param named
    // `index` or generic bounds) don't count as body events. Everything
    // before it is the signature; `CancelToken` there is detected via
    // `sym.signature` by the rules.
    let body_open = bytes.iter().position(|&b| b == b'{').unwrap_or(0);

    let mut depth = 0usize;
    let mut order = 0usize;
    // Indices into `sym.locks` of held guards whose scope is still open.
    let mut open_locks: Vec<usize> = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                open_locks.retain(|&idx| {
                    if sym.locks[idx].depth > depth {
                        sym.locks[idx].scope_end_line = to_line(i);
                        false
                    } else {
                        true
                    }
                });
                i += 1;
            }
            b'.' if i > body_open => {
                // Method call or lock acquisition.
                let s = skip_ws(bytes, i + 1);
                if s < bytes.len() && is_ident_byte(bytes[s]) && !bytes[s].is_ascii_digit() {
                    let mut e = s;
                    while e < bytes.len() && is_ident_byte(bytes[e]) {
                        e += 1;
                    }
                    let name = text[s..e].to_string();
                    let after = skip_ws(bytes, e);
                    if bytes.get(after) == Some(&b'(') {
                        let recv = receiver_ident(bytes, &text, i);
                        let close = match_paren(bytes, after);
                        let empty_args = text[after + 1..close.min(text.len())].trim().is_empty();
                        if empty_args && matches!(name.as_str(), "lock" | "read" | "write") {
                            if let Some(recv) = recv.clone() {
                                let held = guard_is_bound(bytes, &text, i, close);
                                let line = to_line(i);
                                sym.locks.push(LockSite {
                                    name: recv,
                                    line,
                                    depth,
                                    held,
                                    order,
                                    scope_end_line: line,
                                    exclusive: name != "read",
                                });
                                if held {
                                    open_locks.push(sym.locks.len() - 1);
                                }
                                order += 1;
                            }
                        }
                        sym.calls.push(Call {
                            name,
                            kind: CallKind::Method(recv),
                            line: to_line(s),
                        });
                        order += 1;
                        i = after + 1;
                        continue;
                    }
                    i = e;
                    continue;
                }
                i += 1;
            }
            _ if is_ident_byte(b) && !b.is_ascii_digit() && i > body_open => {
                let s = i;
                let mut e = s;
                while e < bytes.len() && is_ident_byte(bytes[e]) {
                    e += 1;
                }
                let word = &text[s..e];
                let prev = prev_non_ws(bytes, s);
                // Loop keywords.
                if matches!(word, "for" | "while" | "loop") && prev != Some(b'.') {
                    sym.loop_lines.push(to_line(s));
                }
                let after = skip_ws(bytes, e);
                if bytes.get(after) == Some(&b'(')
                    && bytes.get(e) != Some(&b'!')
                    && !NON_CALL_KEYWORDS.contains(&word)
                    && prev != Some(b'.')
                {
                    let kind = if prev == Some(b':') && s >= 2 && bytes[s - 2] == b':' {
                        CallKind::Qualified(qualifier_ident(bytes, &text, s))
                    } else {
                        CallKind::Bare
                    };
                    sym.calls.push(Call {
                        name: word.to_string(),
                        kind,
                        line: to_line(s),
                    });
                    order += 1;
                }
                i = e;
            }
            _ => i += 1,
        }
    }
    for idx in open_locks {
        sym.locks[idx].scope_end_line = sym.end_line;
    }

    // Facts and loop lines via per-line token matching (cheap, and allows
    // test-line exclusion to mirror the per-file rules).
    for lineno in lo..=hi {
        if ctx.is_test_line(lineno) {
            continue;
        }
        let line = &lines[lineno - 1];
        for t in SYNC_TOKENS {
            if contains_token(line, t) {
                sym.facts.set(Facts::SYNC);
            }
        }
        for t in WRITE_TOKENS {
            if contains_token(line, t) {
                sym.facts.set(Facts::WRITE);
            }
        }
        for t in APPEND_TOKENS {
            if contains_token(line, t) {
                sym.facts.set(Facts::APPEND);
            }
        }
        for t in APPLY_TOKENS {
            if contains_token(line, t) {
                sym.facts.set(Facts::APPLY);
            }
        }
        for t in POLL_TOKENS {
            if contains_token(line, t) {
                sym.facts.set(Facts::POLL);
            }
        }
    }
}

/// True when the guard produced by the lock call at `dot` (whose argument
/// list closes at `close`) is bound by a `let` and survives its statement:
/// the statement starts with `let`, and after the lock call only an
/// `unwrap`/`expect`/`unwrap_or_else` adapter may follow before the `;`.
fn guard_is_bound(bytes: &[u8], text: &str, dot: usize, close: usize) -> bool {
    // Statement start: walk back to the previous `;`, `{`, or `}`.
    let mut s = dot;
    while s > 0 && !matches!(bytes[s - 1], b';' | b'{' | b'}') {
        s -= 1;
    }
    let head = text[s..dot].trim_start();
    if !(head.starts_with("let ") || head.starts_with("let(")) {
        return false;
    }
    // Tail: after the call's closing paren, only guard adapters then `;`.
    let mut j = close + 1;
    loop {
        j = skip_ws(bytes, j);
        match bytes.get(j) {
            Some(b';') => return true,
            Some(b'.') => {
                let s2 = skip_ws(bytes, j + 1);
                let mut e2 = s2;
                while e2 < bytes.len() && is_ident_byte(bytes[e2]) {
                    e2 += 1;
                }
                let name = &text[s2..e2];
                if !matches!(name, "unwrap" | "expect" | "unwrap_or_else") {
                    return false;
                }
                let p = skip_ws(bytes, e2);
                if bytes.get(p) != Some(&b'(') {
                    return false;
                }
                j = match_paren(bytes, p) + 1;
            }
            Some(b'?') => {
                j += 1;
            }
            _ => return false,
        }
    }
}

/// The last identifier of the receiver chain ending at the `.` at `dot`:
/// `self.cells[i].write()` → `cells`; `rx.lock()` → `rx`; a chained call
/// result (`f().lock()`) has no nameable receiver.
fn receiver_ident(bytes: &[u8], text: &str, dot: usize) -> Option<String> {
    let mut j = dot;
    // Skip one bracket group (indexing).
    loop {
        if j == 0 {
            return None;
        }
        let c = bytes[j - 1];
        if c == b']' {
            let mut depth = 0usize;
            while j > 0 {
                match bytes[j - 1] {
                    b']' => depth += 1,
                    b'[' => {
                        depth -= 1;
                        if depth == 0 {
                            j -= 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j -= 1;
            }
            continue;
        }
        if c.is_ascii_whitespace() {
            j -= 1;
            continue;
        }
        if is_ident_byte(c) {
            let e = j;
            while j > 0 && is_ident_byte(bytes[j - 1]) {
                j -= 1;
            }
            let name = &text[j..e];
            if name.is_empty() || name.as_bytes()[0].is_ascii_digit() {
                return None;
            }
            return Some(name.to_string());
        }
        return None;
    }
}

/// The path segment immediately before a `::name(` call (`a::b::f(` → `b`).
fn qualifier_ident(bytes: &[u8], text: &str, name_start: usize) -> String {
    // name_start points at `f`; bytes[name_start-2..name_start] == "::".
    let mut j = name_start.saturating_sub(2);
    // Skip a turbofish / generic group if present.
    if j > 0 && bytes[j - 1] == b'>' {
        let mut depth = 0usize;
        while j > 0 {
            match bytes[j - 1] {
                b'>' => depth += 1,
                b'<' => {
                    depth -= 1;
                    if depth == 0 {
                        j -= 1;
                        break;
                    }
                }
                _ => {}
            }
            j -= 1;
        }
    }
    let e = j;
    while j > 0 && is_ident_byte(bytes[j - 1]) {
        j -= 1;
    }
    text[j..e].to_string()
}

/// Joins lines with `\n`, returning the text and per-line byte offsets.
fn join(lines: &[String]) -> (String, Vec<usize>) {
    let mut offsets = Vec::with_capacity(lines.len());
    let mut text = String::new();
    for l in lines {
        offsets.push(text.len());
        text.push_str(l);
        text.push('\n');
    }
    (text, offsets)
}

/// 1-based line of byte `pos` given `join` offsets.
fn line_of(offsets: &[usize], pos: usize) -> usize {
    match offsets.binary_search(&pos) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// First non-whitespace index at or after `i`.
fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Last non-whitespace byte strictly before `i`.
fn prev_non_ws(bytes: &[u8], i: usize) -> Option<u8> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !bytes[j].is_ascii_whitespace() {
            return Some(bytes[j]);
        }
    }
    None
}

/// Index of the `>` closing the `<` at `i` (balanced); `i` past-the-end on
/// imbalance.
fn skip_angles(bytes: &[u8], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < bytes.len() {
        match bytes[j] {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index of the `}` matching the `{` at `i`.
fn match_brace(bytes: &[u8], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < bytes.len() {
        match bytes[j] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index of the `)` matching the `(` at `i`.
fn match_paren(bytes: &[u8], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < bytes.len() {
        match bytes[j] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// True when `bytes[i..]` is the whole word `word` at identifier boundaries.
fn word_at(bytes: &[u8], i: usize, word: &[u8]) -> bool {
    if i + word.len() > bytes.len() || &bytes[i..i + word.len()] != word {
        return false;
    }
    let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
    let after_ok = i + word.len() >= bytes.len() || !is_ident_byte(bytes[i + word.len()]);
    before_ok && after_ok
}

/// Ident-boundary token containment (same semantics as `rules::contains_token`,
/// duplicated to avoid a circular module dependency).
fn contains_token(hay: &str, needle: &str) -> bool {
    let hb = hay.as_bytes();
    let nb = needle.as_bytes();
    let first_is_ident = nb.first().is_some_and(|b| is_ident_byte(*b));
    let last_is_ident = nb.last().is_some_and(|b| is_ident_byte(*b));
    let mut from = 0usize;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let before_ok = !first_is_ident || at == 0 || !is_ident_byte(hb[at - 1]);
        let end = at + nb.len();
        let after_ok = !last_is_ident || end >= hb.len() || !is_ident_byte(hb[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_of(src: &str) -> FileSymbols {
        let ctx = FileContext::build("crates/lsi-core/src/journal.rs", src);
        FileSymbols::extract(&ctx)
    }

    #[test]
    fn module_paths() {
        assert_eq!(
            module_path("crates/lsi-core/src/journal.rs"),
            vec!["lsi_core", "journal"]
        );
        assert_eq!(
            module_path("crates/lsi-serve/src/lib.rs"),
            vec!["lsi_serve"]
        );
        assert_eq!(
            module_path("crates/lsi-bench/src/bin/reproduce.rs"),
            vec!["lsi_bench", "reproduce"]
        );
    }

    #[test]
    fn extracts_calls_and_impl_type() {
        let src = "struct J;\nimpl J {\n    fn go(&mut self) {\n        self.journal.append(&r);\n        helper(1);\n        crate::storage::write_index_atomic(&p);\n    }\n}\n";
        let syms = sym_of(src);
        let f = &syms.fns[0];
        assert_eq!(f.self_type.as_deref(), Some("J"));
        let names: Vec<&str> = f.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"append"));
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"write_index_atomic"));
        let append = f.calls.iter().find(|c| c.name == "append").unwrap();
        assert_eq!(append.kind, CallKind::Method(Some("journal".into())));
        let wia = f
            .calls
            .iter()
            .find(|c| c.name == "write_index_atomic")
            .unwrap();
        assert_eq!(wia.kind, CallKind::Qualified("storage".into()));
        assert!(f.facts.has(Facts::APPEND));
    }

    #[test]
    fn lock_sites_with_binding_and_temporary() {
        let src = "impl C {\n    fn go(&self) {\n        let _moves = self.moves.write().unwrap_or_else(|p| p.into_inner());\n        let best = self.cells.iter().map(|c| c.read().unwrap().alive()).min();\n        {\n            let mut cell = self.cells[0].write().unwrap();\n            cell.touch();\n        }\n    }\n}\n";
        let syms = sym_of(src);
        let f = &syms.fns[0];
        assert_eq!(f.locks.len(), 3, "{:#?}", f.locks);
        assert_eq!(f.locks[0].name, "moves");
        assert!(f.locks[0].held);
        assert_eq!(f.locks[1].name, "c");
        assert!(
            !f.locks[1].held,
            "closure temporary must not be a held guard"
        );
        assert_eq!(f.locks[2].name, "cells");
        assert!(f.locks[2].held);
        assert!(f.locks[2].depth > f.locks[0].depth);
        // The outer guard lives to the fn's close; the scoped one dies at
        // its block's `}`, before the fn ends.
        assert_eq!(f.locks[0].scope_end_line, f.end_line);
        assert!(f.locks[2].scope_end_line < f.end_line);
        assert!(f.locks[2].scope_end_line > f.locks[2].line);
    }

    #[test]
    fn loops_and_polls() {
        let src = "fn scan(xs: &[f64], cancel: Option<&CancelToken>) -> f64 {\n    let mut acc = 0.0;\n    for (i, x) in xs.iter().enumerate() {\n        if i % 1024 == 0 {\n            if let Some(t) = cancel { t.check().ok(); }\n        }\n        acc += x;\n    }\n    acc\n}\n";
        let syms = sym_of(src);
        let f = &syms.fns[0];
        assert!(!f.loop_lines.is_empty());
        assert!(f.facts.has(Facts::POLL));
        assert!(f.signature.contains("CancelToken"));
    }

    #[test]
    fn write_and_sync_facts() {
        let src = "fn save(p: &Path) -> std::io::Result<()> {\n    let f = File::create(p)?;\n    f.sync_all()?;\n    Ok(())\n}\n";
        let syms = sym_of(src);
        assert!(syms.fns[0].facts.has(Facts::WRITE));
        assert!(syms.fns[0].facts.has(Facts::SYNC));
    }
}
