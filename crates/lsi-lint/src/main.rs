#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The `lsi-lint` binary: lints the workspace (or explicit paths) and exits
//! 0 when clean, 1 on deny-level findings, 2 on usage or I/O errors.

use lsi_lint::{render_json, render_sarif, render_text, Finding, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: lsi-lint [options] [paths...]

options:
  --fix-hints           print remediation hints under each finding
  --format text|json|sarif
                        output format (default text)
  --explain <rule>      print the rationale for one rule id and exit
  --allow-budget <n>    fail (exit 1) when the workspace carries more than
                        <n> inline `lsi-lint: allow` directives
  --deny-warnings       exit 1 on warn-level findings too

Lints workspace .rs files against the conformance rules (see `lsi_lint`
crate docs for the rule table). With no paths, lints the whole workspace
(vendor/, target/, and lsi-lint's own fixtures/ excluded). Interprocedural
rules (S1/W1/L1/C1) analyze the linted file set as one call graph.

exit codes: 0 clean (warnings allowed), 1 deny-level findings, 2 usage/io error";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("lsi-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut fix_hints = false;
    let mut deny_warnings = false;
    let mut format = "text".to_string();
    let mut allow_budget: Option<usize> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fix-hints" => fix_hints = true,
            "--deny-warnings" => deny_warnings = true,
            "--format" => {
                format = args
                    .next()
                    .ok_or("--format needs a value (text|json|sarif)")?;
                if format != "text" && format != "json" && format != "sarif" {
                    return Err(format!(
                        "unknown format `{format}` (expected text|json|sarif)"
                    ));
                }
            }
            "--explain" => {
                let rule = args.next().ok_or("--explain needs a rule id")?;
                return explain(&rule);
            }
            "--allow-budget" => {
                let n = args.next().ok_or("--allow-budget needs a number")?;
                allow_budget = Some(
                    n.parse::<usize>()
                        .map_err(|_| format!("--allow-budget: `{n}` is not a number"))?,
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            p => paths.push(PathBuf::from(p)),
        }
    }

    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = lsi_lint::find_workspace_root(&cwd).unwrap_or_else(|| cwd.clone());

    let files: Vec<PathBuf> = if paths.is_empty() {
        lsi_lint::discover_workspace_files(&root)
    } else {
        let mut files = Vec::new();
        for p in &paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                cwd.join(p)
            };
            if abs.is_dir() {
                files.extend(lsi_lint::collect_files(&abs));
            } else if abs.is_file() {
                files.push(abs);
            } else {
                return Err(format!("no such file or directory: {}", p.display()));
            }
        }
        files
    };

    let findings: Vec<Finding> =
        lsi_lint::lint_files(&root, &files).map_err(|e| format!("read: {e}"))?;

    match format.as_str() {
        "json" => print!("{}", render_json(&findings)),
        "sarif" => print!("{}", render_sarif(&findings)),
        _ => print!("{}", render_text(&findings, fix_hints)),
    }

    let mut fail = findings.iter().any(|f| f.severity == Severity::Deny);
    if deny_warnings && !findings.is_empty() {
        fail = true;
    }
    if let Some(budget) = allow_budget {
        let allows = lsi_lint::count_allows(&root, &files).map_err(|e| format!("read: {e}"))?;
        if allows > budget {
            eprintln!(
                "lsi-lint: allow budget exceeded: {allows} inline allow directives, \
                 budget is {budget}"
            );
            fail = true;
        } else {
            eprintln!("lsi-lint: allow budget ok: {allows}/{budget} directives");
        }
    }
    Ok(if fail {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// Prints the long-form rationale for one rule id (full id or short prefix).
fn explain(rule: &str) -> Result<ExitCode, String> {
    let want = rule.split('-').next().unwrap_or(rule);
    if want.eq_ignore_ascii_case("A0") {
        println!(
            "A0-allow-syntax (deny)\n\nEvery `lsi-lint:` directive must parse as \
             `allow(<rule-id>, \"<justification>\")` with a non-empty reason; a typo'd \
             directive would otherwise silently disable a rule, so malformed ones are \
             themselves deny findings."
        );
        return Ok(ExitCode::SUCCESS);
    }
    for r in lsi_lint::rules::registry() {
        let short = r.id().split('-').next().unwrap_or(r.id());
        if r.id().eq_ignore_ascii_case(rule) || short.eq_ignore_ascii_case(want) {
            println!("{} ({})\n\n{}", r.id(), r.severity(), r.explain());
            return Ok(ExitCode::SUCCESS);
        }
    }
    for r in lsi_lint::rules::workspace_registry() {
        let short = r.id().split('-').next().unwrap_or(r.id());
        if r.id().eq_ignore_ascii_case(rule) || short.eq_ignore_ascii_case(want) {
            println!("{} ({})\n\n{}", r.id(), r.severity(), r.explain());
            return Ok(ExitCode::SUCCESS);
        }
    }
    Err(format!(
        "unknown rule `{rule}` (see --help for the rule table)"
    ))
}
