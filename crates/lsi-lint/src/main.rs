#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The `lsi-lint` binary: lints the workspace (or explicit paths) and exits
//! 0 when clean, 1 on deny-level findings, 2 on usage or I/O errors.

use lsi_lint::{render_json, render_text, Finding, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: lsi-lint [--fix-hints] [--format text|json] [paths...]

Lints workspace .rs files against the conformance rules (see `lsi_lint`
crate docs for the rule table). With no paths, lints the whole workspace
(vendor/, target/, and lsi-lint's own fixtures/ excluded).

exit codes: 0 clean (warnings allowed), 1 deny-level findings, 2 usage/io error";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("lsi-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut fix_hints = false;
    let mut format = "text".to_string();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fix-hints" => fix_hints = true,
            "--format" => {
                format = args.next().ok_or("--format needs a value (text|json)")?;
                if format != "text" && format != "json" {
                    return Err(format!("unknown format `{format}` (expected text|json)"));
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            p => paths.push(PathBuf::from(p)),
        }
    }

    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = lsi_lint::find_workspace_root(&cwd).unwrap_or_else(|| cwd.clone());

    let files: Vec<PathBuf> = if paths.is_empty() {
        lsi_lint::discover_workspace_files(&root)
    } else {
        let mut files = Vec::new();
        for p in &paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                cwd.join(p)
            };
            if abs.is_dir() {
                files.extend(lsi_lint::collect_files(&abs));
            } else if abs.is_file() {
                files.push(abs);
            } else {
                return Err(format!("no such file or directory: {}", p.display()));
            }
        }
        files
    };

    let mut findings: Vec<Finding> = Vec::new();
    for f in &files {
        findings
            .extend(lsi_lint::lint_file(&root, f).map_err(|e| format!("{}: {e}", f.display()))?);
    }
    findings
        .sort_by(|a, b| (a.path.clone(), a.line, a.rule).cmp(&(b.path.clone(), b.line, b.rule)));

    match format.as_str() {
        "json" => print!("{}", render_json(&findings)),
        _ => print!("{}", render_text(&findings, fix_hints)),
    }

    let deny = findings.iter().any(|f| f.severity == Severity::Deny);
    Ok(if deny {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}
