//! Finding types and the text / JSON renderers.

use std::fmt;

/// Rule severity. Deny findings fail the build (exit code 1); warn findings
/// are printed but do not affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Printed, but does not fail the run.
    Warn,
    /// Fails the run.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, e.g. `D1-nondeterminism`.
    pub rule: &'static str,
    /// Rule severity.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Suggested remediation, shown under `--fix-hints`.
    pub hint: String,
}

impl Finding {
    /// A deny-level meta finding for malformed `lsi-lint:` directives.
    pub fn meta(path: &str, line: usize, message: String) -> Finding {
        Finding {
            rule: "A0-allow-syntax",
            severity: Severity::Deny,
            path: path.to_string(),
            line,
            message,
            snippet: String::new(),
            hint:
                "write `// lsi-lint: allow(<rule-id>, \"<justification>\")` with a non-empty reason"
                    .to_string(),
        }
    }
}

/// Renders findings as human-readable text. Returns the report string.
pub fn render_text(findings: &[Finding], fix_hints: bool) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}[{}] {}:{}: {}\n",
            f.severity, f.rule, f.path, f.line, f.message
        ));
        if !f.snippet.is_empty() {
            out.push_str(&format!("    | {}\n", f.snippet));
        }
        if fix_hints && !f.hint.is_empty() {
            out.push_str(&format!("    = hint: {}\n", f.hint));
        }
    }
    let deny = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let warn = findings.len() - deny;
    out.push_str(&format!(
        "lsi-lint: {deny} deny, {warn} warn finding{} \n",
        if findings.len() == 1 { "" } else { "s" }
    ));
    out
}

/// Renders findings as a stable machine-readable JSON document.
pub fn render_json(findings: &[Finding]) -> String {
    let deny = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let warn = findings.len() - deny;
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}, \"hint\": {}}}{}\n",
            json_str(f.rule),
            json_str(&f.severity.to_string()),
            json_str(&f.path),
            f.line,
            json_str(&f.message),
            json_str(&f.snippet),
            json_str(&f.hint),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"counts\": {{\"deny\": {deny}, \"warn\": {warn}}}\n}}\n"
    ));
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "D1-nondeterminism",
            severity: Severity::Deny,
            path: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "wall-clock read".to_string(),
            snippet: "let t = Instant::now();".to_string(),
            hint: "thread a seed or timestamp in".to_string(),
        }
    }

    #[test]
    fn text_contains_location_and_rule() {
        let s = render_text(&[sample()], true);
        assert!(s.contains("deny[D1-nondeterminism] crates/x/src/lib.rs:7"));
        assert!(s.contains("hint:"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut f = sample();
        f.message = "a \"quoted\" thing\n".to_string();
        let s = render_json(&[f]);
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.contains("\"deny\": 1"));
        assert!(s.contains("\"warn\": 0"));
    }
}
