//! A sanitizing scanner: blanks out comments, string literals, and char
//! literals so the rule pass sees only code, while collecting every comment
//! (with its line number) for doc-comment and `lsi-lint: allow` processing.
//!
//! The scanner is a hand-rolled state machine over bytes. It understands:
//!
//! * line comments (`//`, `///`, `//!`),
//! * nested block comments (`/* /* */ */`, `/** */`, `/*! */`),
//! * string literals with escapes (`"a\"b"`), byte strings (`b"…"`),
//! * raw strings with any hash count (`r"…"`, `r#"…"#`, `br##"…"##`),
//! * char literals incl. escapes (`'a'`, `'\n'`, `'\u{1F600}'`) versus
//!   lifetimes (`'a`, `'static`), disambiguated by lookahead.
//!
//! Sanitized output preserves the byte-for-byte line structure of the input
//! (every blanked byte becomes a space; newlines survive), so line numbers in
//! the sanitized text match the source exactly.

/// One comment captured during scanning.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first byte.
    pub line: usize,
    /// Full comment text including the `//`/`/*` markers.
    pub text: String,
    /// True when non-whitespace code precedes the comment on its first line
    /// (a trailing comment). Allow directives in trailing comments apply to
    /// their own line; standalone ones apply to the next code line.
    pub has_code_before: bool,
}

/// Result of scanning one source file.
#[derive(Debug)]
pub struct Lexed {
    /// The source with comment/string/char contents blanked to spaces.
    pub sanitized: String,
    /// Every comment in source order.
    pub comments: Vec<Comment>,
}

/// True for bytes that can continue a Rust identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scans `src`, returning the sanitized text and the comment list.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut line_has_code = false;
    let mut i = 0usize;

    // Copy newlines up front so line structure always survives.
    for (j, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            out[j] = b'\n';
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                let start_line = line;
                let had_code = line_has_code;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line: start_line,
                    text: src[start..i].to_string(),
                    has_code_before: had_code,
                });
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let had_code = line_has_code;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    text: src[start..i].to_string(),
                    has_code_before: had_code,
                });
                // A single-line block comment keeps `line_has_code`: code may
                // precede it and more may follow on the same line. A
                // multi-line one ends on a fresh line where nothing before
                // this point is code, so the flag must reset — otherwise a
                // trailing comment on the close line inherits line 1's state.
                if line > start_line {
                    line_has_code = false;
                }
            }
            b'"' => {
                line_has_code = true;
                // Was this the body of a raw string? The `r`/`b`/`#` prefix
                // was already consumed as code below, which is fine: the
                // prefix bytes are not string *content*.
                i = skip_plain_string(bytes, i, &mut line);
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                line_has_code = true;
                i = skip_raw_string(bytes, i, &mut line);
            }
            b'r' if is_raw_ident_start(bytes, i) => {
                // A raw identifier like `r#fn`: blank the `r#` to `__` so the
                // remaining bytes fuse into one ordinary identifier (`__fn`)
                // instead of leaving a phantom `fn` keyword in the output.
                out[i] = b'_';
                out[i + 1] = b'_';
                line_has_code = true;
                i += 2;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    line_has_code = true;
                    // Blank the contents (quotes included).
                    for &nb in &bytes[i..end] {
                        if nb == b'\n' {
                            line += 1;
                        }
                    }
                    i = end;
                } else {
                    // A lifetime: copy the tick, continue as code.
                    out[i] = b'\'';
                    line_has_code = true;
                    i += 1;
                }
            }
            _ => {
                out[i] = b;
                if !b.is_ascii_whitespace() {
                    line_has_code = true;
                }
                i += 1;
            }
        }
    }

    Lexed {
        sanitized: String::from_utf8(out)
            .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned()),
        comments,
    }
}

/// True when `bytes[i..]` begins a raw (byte) string: `r"`, `r#`, `br"`,
/// `b"`-with-hashes etc. Plain `b"…"` is handled by the `"` arm after the
/// `b` is copied as code, which is equivalent.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j >= bytes.len() || bytes[j] != b'r' {
            return false;
        }
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    // Must not be the tail of an identifier like `attr"` (impossible) or a
    // longer ident like `for"`: check the byte before `i`.
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// True when `bytes[i..]` begins a raw identifier (`r#ident`). Raw strings
/// (`r#"…"#`) are matched first by [`is_raw_string_start`], so reaching here
/// with `r#` followed by an identifier byte is unambiguous.
fn is_raw_ident_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false; // tail of a longer identifier
    }
    bytes.get(i + 1) == Some(&b'#')
        && bytes
            .get(i + 2)
            .is_some_and(|&b| b.is_ascii_alphabetic() || b == b'_')
}

/// Consumes a raw string starting at `i` (at the `r`/`b`), returning the
/// index one past its closing quote+hashes. Updates `line`.
fn skip_raw_string(bytes: &[u8], i: usize, line: &mut usize) -> usize {
    let mut j = i;
    while bytes[j] != b'"' {
        j += 1; // consumes `b`, `r`, and the opening hashes
    }
    let hashes = bytes[i..j].iter().filter(|&&b| b == b'#').count();
    j += 1;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            *line += 1;
            j += 1;
        } else if bytes[j] == b'"'
            && bytes[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
        {
            return j + 1 + hashes;
        } else {
            j += 1;
        }
    }
    j
}

/// Consumes a plain (possibly escaped) string starting at the opening quote,
/// returning the index one past the closing quote. Updates `line`.
fn skip_plain_string(bytes: &[u8], i: usize, line: &mut usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => {
                // The escaped byte may itself be a newline (a line
                // continuation); it still advances the line counter.
                if bytes.get(j + 1) == Some(&b'\n') {
                    *line += 1;
                }
                j += 2;
            }
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// If `bytes[i]` (a `'`) opens a char literal, returns the index one past its
/// closing `'`; returns `None` for lifetimes.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: scan to the closing quote.
        let mut j = i + 2;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                b'\n' => return None, // malformed; treat as lifetime-ish
                _ => j += 1,
            }
        }
        None
    } else if bytes.get(i + 2) == Some(&b'\'') && next != b'\'' {
        // 'x' — a one-byte char literal.
        Some(i + 3)
    } else {
        // Multi-byte UTF-8 char literal like 'λ': find a close quote before
        // any identifier-breaking byte.
        let mut j = i + 1;
        let limit = (i + 8).min(bytes.len());
        if next.is_ascii() && (is_ident_byte(next) || next == b'_') {
            // Could be a lifetime ('a, 'static): lifetimes are ASCII ident
            // chars with no closing quote immediately after the ident run.
            while j < limit && is_ident_byte(*bytes.get(j)?) {
                j += 1;
            }
            if bytes.get(j) == Some(&b'\'') {
                return Some(j + 1); // e.g. 'q' handled above; longer never valid, be safe
            }
            return None;
        }
        while j < limit {
            if bytes[j] == b'\'' {
                return Some(j + 1);
            }
            j += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let l = lex("let a = 1; // trailing\n/* block\nstill */ let b = 2;\n");
        assert!(l.sanitized.contains("let a = 1;"));
        assert!(!l.sanitized.contains("trailing"));
        assert!(!l.sanitized.contains("block"));
        assert!(l.sanitized.contains("let b = 2;"));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].has_code_before);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn strips_strings_and_chars_keeps_lifetimes() {
        let l = lex("let s = \"Instant::now()\"; let c = '\\n'; fn f<'a>(x: &'a str) {}\n");
        assert!(!l.sanitized.contains("Instant::now"));
        assert!(l.sanitized.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn raw_strings_and_nested_blocks() {
        let l = lex("let r = r#\"unsafe \"quoted\" here\"#; /* a /* b */ c */ let z = 3;\n");
        assert!(!l.sanitized.contains("unsafe"));
        assert!(l.sanitized.contains("let z = 3;"));
    }

    #[test]
    fn line_continuation_in_string_counts_its_newline() {
        let src = "let s = \"one \\\ntwo\";\nlet t = 1; // after\n";
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 3);
    }

    #[test]
    fn line_numbers_survive_sanitization() {
        let src = "a\n\"two\nlines\"\nb\n";
        let l = lex(src);
        let lines: Vec<&str> = l.sanitized.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[3].trim(), "b");
    }
}
