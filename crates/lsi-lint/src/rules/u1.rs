//! U1-unsafe: `unsafe` is forbidden everywhere except an explicit
//! allowlist — currently only the counting-allocator integration test,
//! which must implement `GlobalAlloc`. The allowlist mirrors the crates'
//! `#![forbid(unsafe_code)]` / scoped `#[allow(unsafe_code)]` attributes.

use super::{contains_token, emit, Rule};
use crate::context::FileContext;
use crate::report::{Finding, Severity};

/// Files allowed to contain `unsafe` (each must also carry
/// `#![deny(unsafe_code)]` with scoped, justified allows).
const ALLOWLIST: &[&str] = &["crates/lsi-linalg/tests/alloc_guard.rs"];

/// The U1 rule.
pub struct U1Unsafe;

impl Rule for U1Unsafe {
    fn id(&self) -> &'static str {
        "U1-unsafe"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn description(&self) -> &'static str {
        "unsafe code is forbidden outside the explicit allowlist"
    }
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if ALLOWLIST.contains(&ctx.rel.as_str()) {
            return;
        }
        // Applies to every role, test code included: unsafe in a test is
        // still unsafe.
        for (idx, line) in ctx.lines.iter().enumerate() {
            let lineno = idx + 1;
            if contains_token(line, "unsafe") {
                emit(
                    ctx,
                    out,
                    self.id(),
                    self.severity(),
                    lineno,
                    "`unsafe` outside the allowlist".to_string(),
                    "rewrite safely, or (exceptionally) extend U1's allowlist together with a scoped #[allow(unsafe_code)] and justification",
                );
            }
        }
    }
}
