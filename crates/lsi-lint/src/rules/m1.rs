//! M1-arrival-order-merge: folding cross-worker replies into a result
//! accumulator as they *arrive* (off a channel receive, a ticket wait, or
//! a thread join) makes the merged output depend on scheduling — the
//! sharded coordinator's answers must be bitwise identical for every
//! shard count and reply order. Heuristic (warn-level): flag lines where
//! a reply-arrival token meets `push`/`extend`/`append` alongside a
//! merge-ish result identifier. The sanctioned shape stores each reply in
//! its shard-indexed slot and reduces the slots in index order
//! (`lsi_serve::merge_top_k`).

use super::{contains_token, emit, Rule};
use crate::context::{FileContext, Role};
use crate::report::{Finding, Severity};

/// Tokens that mean "a reply just arrived from another thread".
const ARRIVAL_TOKENS: &[&str] = &[
    "recv",
    "try_recv",
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_until",
    "join",
];

/// Accumulator methods that fold in arrival order.
const ACCUM_TOKENS: &[&str] = &["push", "extend", "append"];

/// Identifiers that suggest the accumulator is a merged result set.
const MERGE_TOKENS: &[&str] = &[
    "merged", "merge", "hits", "results", "ranked", "top_k", "answers",
];

/// The M1 rule.
pub struct M1ArrivalOrderMerge;

impl Rule for M1ArrivalOrderMerge {
    fn id(&self) -> &'static str {
        "M1-arrival-order-merge"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "cross-worker result merges must be order-fixed, never arrival-order"
    }
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if ctx.role == Role::TestOrBench {
            return;
        }
        for (idx, line) in ctx.lines.iter().enumerate() {
            let lineno = idx + 1;
            if ctx.is_test_line(lineno) {
                continue;
            }
            let arrives = ARRIVAL_TOKENS.iter().any(|t| contains_token(line, t));
            if !arrives {
                continue;
            }
            let accumulates = ACCUM_TOKENS.iter().any(|t| contains_token(line, t));
            if !accumulates {
                continue;
            }
            let merge_ish = MERGE_TOKENS.iter().any(|t| contains_token(line, t));
            if !merge_ish {
                continue;
            }
            emit(
                ctx,
                out,
                self.id(),
                self.severity(),
                lineno,
                "reply folded into a merged result set in arrival order; the merge must be order-fixed"
                    .to_string(),
                "store each reply in its shard-indexed slot and reduce slots in index order (see lsi_serve::merge_top_k)",
            );
        }
    }
}
