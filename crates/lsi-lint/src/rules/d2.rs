//! D2-unseeded-rng: every function that constructs an RNG must be seedable
//! from the outside — a `seed`-like `u64` parameter or a `&mut impl Rng`.

use super::{contains_token, emit, Rule};
use crate::context::{FileContext, Role};
use crate::report::{Finding, Severity};

/// RNG construction sites. `from_entropy`/`thread_rng` are flagged even in
/// seed-taking functions: they are nondeterministic by definition.
const CONSTRUCTORS: &[&str] = &["seed_from_u64", "from_seed", "from_entropy", "thread_rng"];

/// Constructors that are always wrong, seeded caller or not.
const ALWAYS_BAD: &[&str] = &["from_entropy", "thread_rng"];

/// The D2 rule.
pub struct D2UnseededRng;

impl D2UnseededRng {
    fn signature_is_seeded(sig: &str) -> bool {
        // `&mut impl Rng`, `R: Rng`, `rng: &mut R` with an `R: Rng` bound —
        // all carry the token `Rng`. A `u64` seed parameter carries an ident
        // containing `seed` (seed, base_seed, seed0, …).
        if contains_token(sig, "Rng") || contains_token(sig, "RngCore") {
            return true;
        }
        sig.contains("seed")
    }
}

impl Rule for D2UnseededRng {
    fn id(&self) -> &'static str {
        "D2-unseeded-rng"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn description(&self) -> &'static str {
        "functions constructing an RNG must take a u64 seed or &mut impl Rng parameter"
    }
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if ctx.role == Role::TestOrBench {
            return;
        }
        for (idx, line) in ctx.lines.iter().enumerate() {
            let lineno = idx + 1;
            if ctx.is_test_line(lineno) {
                continue;
            }
            for c in CONSTRUCTORS {
                if !contains_token(line, c) {
                    continue;
                }
                if ALWAYS_BAD.contains(c) {
                    emit(
                        ctx,
                        out,
                        self.id(),
                        self.severity(),
                        lineno,
                        format!("`{c}` draws OS entropy; outputs can never be reproduced"),
                        "construct the RNG with `seed_from_u64(seed)` from a caller-supplied seed",
                    );
                    continue;
                }
                let Some(f) = ctx.enclosing_fn(lineno) else {
                    emit(
                        ctx,
                        out,
                        self.id(),
                        self.severity(),
                        lineno,
                        format!("RNG constructed via `{c}` outside any function"),
                        "move construction into a function that takes `seed: u64` or `&mut impl Rng`",
                    );
                    continue;
                };
                if !Self::signature_is_seeded(&f.signature) {
                    emit(
                        ctx,
                        out,
                        self.id(),
                        self.severity(),
                        lineno,
                        format!(
                            "fn `{}` constructs an RNG via `{c}` but takes neither a `u64` seed nor `&mut impl Rng`",
                            f.name
                        ),
                        "add a `seed: u64` (or `rng: &mut impl Rng`) parameter and thread it from the caller",
                    );
                }
            }
        }
    }
}
