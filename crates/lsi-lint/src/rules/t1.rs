//! T1-unbounded-socket-read: transport hardening policy (CLAUDE.md: any fn
//! that reads from a socket or child pipe must bound the read with a
//! deadline). A blocking `read` on a `UnixStream`/`TcpStream`/child pipe
//! with no `set_read_timeout` in sight hangs the caller for as long as the
//! peer stays silent — a SIGKILLed daemon mid-reply would wedge the
//! coordinator's scatter, the exact latency hole the per-RPC deadlines
//! exist to close. Warn-level: the heuristic only sees that a timeout
//! idiom appears somewhere in the fn, not that it governs this read; the
//! sanctioned structure is to route reads through the deadline-carrying
//! frame codec (`lsi_serve::transport::read_frame`), which arms the
//! timeout itself.

use super::{contains_token, emit, Rule};
use crate::context::{FileContext, Role};
use crate::report::{Finding, Severity};

/// Types whose presence marks a fn as talking to a socket or child pipe.
const SOURCES: &[&str] = &["UnixStream", "TcpStream", "ChildStdout", "ChildStderr"];
/// Blocking read entry points.
const READS: &[&str] = &[
    ".read(",
    ".read_exact(",
    ".read_to_end(",
    ".read_to_string(",
];
/// Deadline idioms that bound how long a read may block.
const GUARDS: &[&str] = &["set_read_timeout(", "set_nonblocking("];

/// The T1 rule.
pub struct T1UnboundedSocketRead;

impl Rule for T1UnboundedSocketRead {
    fn id(&self) -> &'static str {
        "T1-unbounded-socket-read"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "fns reading from sockets or child pipes must set a read timeout"
    }
    fn explain(&self) -> &'static str {
        "A socket read with no deadline blocks until the peer says otherwise, \
         and a kill -9'd peer never says anything: the caller inherits the \
         crash as an unbounded stall instead of a typed timeout. Any fn that \
         mentions a socket or child-pipe type and performs a blocking read \
         must also arm `set_read_timeout` (or drive the socket nonblocking), \
         or — better — route the read through the deadline-carrying frame \
         codec (`lsi_serve::transport::read_frame`), which re-arms the \
         timeout around every partial read."
    }
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>) {
        // Tests and benches talk to peers they control in-process; the
        // policy bites where production code awaits a peer a crash (or a
        // SIGKILL) may have silenced.
        if !matches!(ctx.role, Role::LibSrc | Role::Bin) {
            return;
        }
        for f in &ctx.fns {
            if ctx.is_test_line(f.start_line) {
                continue;
            }
            // Whole-fn scan: the guard may legitimately precede or follow
            // the read (e.g. a timeout re-armed inside the read loop), so
            // order is not significant — only presence.
            let mut sourced = false;
            let mut guarded = false;
            let mut read_line = None;
            for lineno in f.start_line..=f.end_line.min(ctx.lines.len()) {
                if ctx.is_test_line(lineno) {
                    continue;
                }
                let line = &ctx.lines[lineno - 1];
                if GUARDS.iter().any(|g| line.contains(g)) {
                    guarded = true;
                }
                if SOURCES.iter().any(|s| contains_token(line, s)) {
                    sourced = true;
                }
                if read_line.is_none() && READS.iter().any(|r| line.contains(r)) {
                    read_line = Some(lineno);
                }
            }
            if sourced && !guarded {
                if let Some(lineno) = read_line {
                    emit(
                        ctx,
                        out,
                        self.id(),
                        self.severity(),
                        lineno,
                        format!(
                            "fn `{}` reads from a socket or child pipe with no read \
                             timeout in sight",
                            f.name
                        ),
                        "arm `set_read_timeout` before the read (re-arm it inside read \
                         loops), or route the read through the deadline-carrying frame \
                         codec (`lsi_serve::transport::read_frame`)",
                    );
                }
            }
        }
    }
}
