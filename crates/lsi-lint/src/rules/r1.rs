//! R1-reflector: Householder reflectors must come from
//! `vector::householder_reflector` (the scaled, overflow-safe construction).
//! A hand-rolled `norm()`+`signum()` reflector overflows on large entries
//! and loses sign stability. Heuristic (warn-level).

use super::{contains_token, emit, Rule};
use crate::context::{FileContext, Role};
use crate::report::{Finding, Severity};

/// The sanctioned construction site.
const ALLOWLIST: &[&str] = &["crates/lsi-linalg/src/vector.rs"];

/// The R1 rule.
pub struct R1Reflector;

impl Rule for R1Reflector {
    fn id(&self) -> &'static str {
        "R1-reflector"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "no naive norm()-based Householder construction outside vector::householder_reflector"
    }
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if ctx.role == Role::TestOrBench || ALLOWLIST.contains(&ctx.rel.as_str()) {
            return;
        }
        for (idx, line) in ctx.lines.iter().enumerate() {
            let lineno = idx + 1;
            if ctx.is_test_line(lineno) {
                continue;
            }
            // Pattern A: the classic `-x[0].signum() * norm(x)` one-liner.
            let norm_call = contains_token(line, "norm") && line.contains("norm(");
            if norm_call && line.contains("signum") {
                emit(
                    ctx,
                    out,
                    self.id(),
                    self.severity(),
                    lineno,
                    "norm()+signum() reflector construction; use vector::householder_reflector".to_string(),
                    "call `vector::householder_reflector` (scaled, overflow-safe) instead of composing norm and sign by hand",
                );
                continue;
            }
            // Pattern B: any norm() call inside a fn that names itself a
            // householder/reflector builder.
            if norm_call {
                if let Some(f) = ctx.enclosing_fn(lineno) {
                    let n = f.name.to_ascii_lowercase();
                    if n.contains("householder") || n.contains("reflector") {
                        emit(
                            ctx,
                            out,
                            self.id(),
                            self.severity(),
                            lineno,
                            format!("fn `{}` builds a reflector with a raw norm(); use vector::householder_reflector", f.name),
                            "delete the local construction and call `vector::householder_reflector`",
                        );
                    }
                }
            }
        }
    }
}
