//! The rule registry and shared matching helpers.
//!
//! Each rule is a `Rule` implementation with a stable id, a severity, and a
//! `check` pass over one [`FileContext`]. Rules are token-level heuristics by
//! design: they see sanitized code (no comments, no string contents) plus
//! test-region and fn-span metadata, and they favor firing on everything
//! suspicious — the inline `lsi-lint: allow(<rule>, "<reason>")` escape hatch
//! (reason mandatory) is the sanctioned way to keep a justified exception.

use crate::callgraph::Workspace;
use crate::context::FileContext;
use crate::report::{Finding, Severity};

mod c1;
mod d1;
mod d2;
mod d3;
mod e1;
mod k1;
mod l1;
mod m1;
mod p1;
mod p2;
mod r1;
mod s1;
mod s2;
mod t1;
mod u1;
mod w1;

/// A per-file conformance rule.
pub trait Rule {
    /// Stable rule id, e.g. `D1-nondeterminism`.
    fn id(&self) -> &'static str;
    /// Severity of this rule's findings.
    fn severity(&self) -> Severity;
    /// One-line description for `--help` and docs.
    fn description(&self) -> &'static str;
    /// Multi-paragraph rationale for `--explain <rule>`. Defaults to the
    /// one-line description.
    fn explain(&self) -> &'static str {
        self.description()
    }
    /// Runs the rule over one file, appending findings.
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>);
}

/// A workspace-level conformance rule: sees every file plus the resolved
/// call graph and its fixpoint summaries, so invariants can follow calls
/// through helpers instead of stopping at fn boundaries.
pub trait WorkspaceRule {
    /// Stable rule id, e.g. `W1-apply-before-journal`.
    fn id(&self) -> &'static str;
    /// Severity of this rule's findings.
    fn severity(&self) -> Severity;
    /// One-line description for `--help` and docs.
    fn description(&self) -> &'static str;
    /// Multi-paragraph rationale for `--explain <rule>`.
    fn explain(&self) -> &'static str {
        self.description()
    }
    /// Runs the rule over the whole workspace, appending findings.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// All shipped per-file rules, in id order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(d1::D1Nondeterminism),
        Box::new(d2::D2UnseededRng),
        Box::new(d3::D3HasherOrder),
        Box::new(e1::E1PanicPolicy),
        Box::new(k1::K1ThreadDependentBlocking),
        Box::new(m1::M1ArrivalOrderMerge),
        Box::new(p1::P1RawThreads),
        Box::new(p2::P2ThreadDependentChunking),
        Box::new(r1::R1Reflector),
        Box::new(s2::S2UncheckedLengthAlloc),
        Box::new(t1::T1UnboundedSocketRead),
        Box::new(u1::U1Unsafe),
    ]
}

/// All shipped workspace rules, in id order. S1 lives here since PR 9: its
/// durability proof follows helper calls in both directions.
pub fn workspace_registry() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(c1::C1UnpolledHotLoop),
        Box::new(l1::L1LockOrderCycle),
        Box::new(s1::S1UnsyncedWrite),
        Box::new(w1::W1ApplyBeforeJournal),
    ]
}

/// Emits one finding unless an allow directive covers it.
pub(crate) fn emit(
    ctx: &FileContext,
    out: &mut Vec<Finding>,
    rule: &'static str,
    severity: Severity,
    line: usize,
    message: String,
    hint: &str,
) {
    if ctx.allowed(rule, line).is_some() {
        return;
    }
    out.push(Finding {
        rule,
        severity,
        path: ctx.rel.clone(),
        line,
        message,
        snippet: ctx.snippet(line),
        hint: hint.to_string(),
    });
}

/// Finds `needle` in `hay` at identifier boundaries: the byte before the
/// match (if any) and the byte after (if any) must not extend an identifier.
/// `needle` may itself end in `(` or `::…` — boundaries apply to its
/// alphanumeric edges only.
pub(crate) fn contains_token(hay: &str, needle: &str) -> bool {
    token_pos(hay, needle).is_some()
}

/// Like [`contains_token`], returning the byte offset of the first match.
pub(crate) fn token_pos(hay: &str, needle: &str) -> Option<usize> {
    let hb = hay.as_bytes();
    let nb = needle.as_bytes();
    let first_is_ident = nb.first().is_some_and(|b| crate::lexer::is_ident_byte(*b));
    let last_is_ident = nb.last().is_some_and(|b| crate::lexer::is_ident_byte(*b));
    let mut from = 0usize;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let before_ok = !first_is_ident || at == 0 || !crate::lexer::is_ident_byte(hb[at - 1]);
        let end = at + nb.len();
        let after_ok = !last_is_ident || end >= hb.len() || !crate::lexer::is_ident_byte(hb[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

/// The statement text starting at 1-based `line`: that line plus following
/// lines until a `;`, an opening `{`, or `max_lines`, joined with spaces.
/// Used for "is the hash iteration sorted later in the chain" lookahead.
pub(crate) fn statement_from(ctx: &FileContext, line: usize, max_lines: usize) -> String {
    let mut out = String::new();
    for l in line..(line + max_lines).min(ctx.lines.len() + 1) {
        let t = &ctx.lines[l - 1];
        out.push_str(t);
        out.push(' ');
        if t.contains(';') || t.trim_end().ends_with('{') {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries() {
        assert!(contains_token("let x = num_threads / 2;", "num_threads"));
        assert!(!contains_token("let x = effective_threads(n);", "threads"));
        assert!(contains_token("parallel::threads().min(2)", "threads"));
        assert!(!contains_token("#![forbid(unsafe_code)]", "unsafe"));
        assert!(contains_token("unsafe { *p }", "unsafe"));
        assert!(contains_token("x.unwrap()", ".unwrap()"));
        assert!(!contains_token("x.unwrap_or(0)", ".unwrap()"));
    }
}
