//! L1-lock-order-cycle: a static deadlock detector over Mutex/RwLock
//! acquisition order. Every time a guard is held across another acquisition
//! (in the same fn, scope-aware) or across a call into a fn whose summary
//! acquires locks, the rule records a directed edge `held → acquired` in a
//! per-crate graph keyed by the lock's receiver identifier (`self.moves` →
//! `moves`). A cycle in that graph means two paths acquire the same locks
//! in opposite orders — the classic ABBA deadlock.
//!
//! Warn-level by design: receiver identifiers are a best-effort identity
//! (two fields named `state` on different types alias one node), and the
//! expected serve-tier topology (`moves → cells → state`, `rx → state`) is
//! a DAG, so any reported cycle deserves eyes rather than an auto-fail.

use super::{emit, WorkspaceRule};
use crate::callgraph::Workspace;
use crate::context::Role;
use crate::report::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// The L1 rule.
pub struct L1LockOrderCycle;

/// Edge provenance: where the second acquisition happens.
type Site = (usize, usize); // (file index, line)

impl WorkspaceRule for L1LockOrderCycle {
    fn id(&self) -> &'static str {
        "L1-lock-order-cycle"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "Mutex/RwLock acquisition order must form a DAG (no ABBA deadlocks)"
    }
    fn explain(&self) -> &'static str {
        "Deadlock freedom across the serving tier rests on a global lock order: every \
         code path that holds one lock while taking another must agree on the \
         direction (the tree's topology is `moves → cells → state` in the cluster and \
         `rx → state` in the engine worker). The rule reconstructs that order \
         statically: scope-aware guard tracking finds every acquisition made while a \
         `let`-bound guard is live, and the call-graph lock summaries extend the edge \
         set through helper calls (caller's held guard → every lock the callee's \
         summary acquires). Only confidently-resolved calls contribute — blind \
         method-name dispatch is a may-edge and must not invent hazards — and \
         ambiguous candidates contribute only their intersection. Cycles in the \
         per-crate graph are reported once per strongly-connected component.\n\n\
         Identity is the receiver identifier, so distinct fields sharing a name alias \
         one node — which is why the rule warns instead of denying. Same-name edges \
         count only when at least one side is an exclusive acquisition (`.lock()` / \
         `.write()`); shared read-read re-entry is not a hazard."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // crate → (from, to) → smallest provenance site.
        let mut edges: BTreeMap<String, BTreeMap<(String, String), Site>> = BTreeMap::new();
        for (fi, ctx) in ws.ctxs.iter().enumerate() {
            if !matches!(ctx.role, Role::LibSrc | Role::Bin) {
                continue;
            }
            let krate = match ws.syms[fi].module.first() {
                Some(k) => k.clone(),
                None => continue,
            };
            for (ji, f) in ws.syms[fi].fns.iter().enumerate() {
                if ctx.is_test_line(f.start_line) {
                    continue;
                }
                let crate_edges = edges.entry(krate.clone()).or_default();
                // Intra-fn: guard A live across acquisition B.
                for b in &f.locks {
                    if ctx.is_test_line(b.line) {
                        continue;
                    }
                    for a in &f.locks {
                        if !a.held
                            || a.order >= b.order
                            || b.line > a.scope_end_line
                            || ctx.is_test_line(a.line)
                        {
                            continue;
                        }
                        if a.name == b.name && !(a.exclusive || b.exclusive) {
                            continue;
                        }
                        let key = (a.name.clone(), b.name.clone());
                        let site = (fi, b.line);
                        upsert_min(crate_edges, key, site, ws);
                    }
                }
                // Interprocedural: guard A live across a call whose callee
                // summary acquires locks. Same-name re-entry through a call
                // is skipped: the receiver almost always names a different
                // instance (shard cells, child tokens), and the intra-fn
                // pass already covers the same-instance case.
                if let Some(node) = ws.node_id(fi, ji) {
                    for (ci, call) in f.calls.iter().enumerate() {
                        let targets = &ws.graph.resolved[node][ci];
                        if targets.is_empty()
                            || !ws.graph.lock_confident[node][ci]
                            || ctx.is_test_line(call.line)
                        {
                            continue;
                        }
                        // Must-analysis: a hazard edge needs the callee to
                        // certainly acquire the lock, so ambiguous method
                        // resolution contributes only the locks common to
                        // every candidate. (Coverage rules use the union;
                        // hazard rules must not invent edges.)
                        let mut callee_locks: Option<BTreeSet<&str>> = None;
                        for &t in targets {
                            let set: BTreeSet<&str> =
                                ws.graph.lock_names[t].iter().map(String::as_str).collect();
                            callee_locks = Some(match callee_locks {
                                None => set,
                                Some(acc) => acc.intersection(&set).copied().collect(),
                            });
                        }
                        let callee_locks = callee_locks.unwrap_or_default();
                        if callee_locks.is_empty() {
                            continue;
                        }
                        for a in &f.locks {
                            if !a.held
                                || call.line < a.line
                                || call.line > a.scope_end_line
                                || ctx.is_test_line(a.line)
                            {
                                continue;
                            }
                            for l in &callee_locks {
                                if *l == a.name {
                                    continue;
                                }
                                let key = (a.name.clone(), (*l).to_string());
                                let site = (fi, call.line);
                                upsert_min(crate_edges, key, site, ws);
                            }
                        }
                    }
                }
            }
        }

        for (krate, crate_edges) in &edges {
            for scc in cycles(crate_edges) {
                // Report at the smallest (path, line) edge site inside the
                // cycle so the finding is stable run to run.
                let mut best: Option<(&str, Site)> = None;
                for ((from, to), site) in crate_edges {
                    let in_cycle = if from == to {
                        scc.len() == 1 && scc.contains(from)
                    } else {
                        scc.contains(from) && scc.contains(to)
                    };
                    if !in_cycle {
                        continue;
                    }
                    let rel = ws.ctxs[site.0].rel.as_str();
                    if best.is_none_or(|(brel, bsite)| (rel, site.1) < (brel, bsite.1)) {
                        best = Some((rel, *site));
                    }
                }
                let Some((_, (fi, line))) = best else {
                    continue;
                };
                let names: Vec<&str> = scc.iter().map(String::as_str).collect();
                emit(
                    &ws.ctxs[fi],
                    out,
                    self.id(),
                    self.severity(),
                    line,
                    format!(
                        "lock acquisition-order cycle in crate `{krate}`: {{{}}} — two \
                         paths take these locks in opposite orders",
                        names.join(" ⇄ ")
                    ),
                    "pick one global order for these locks and re-acquire in that order \
                     everywhere, or shrink a guard's scope (drop it before taking the \
                     next lock)",
                );
            }
        }
    }
}

/// Keeps the smallest (path, line) provenance per edge so reports are
/// deterministic regardless of file iteration order.
fn upsert_min(
    edges: &mut BTreeMap<(String, String), Site>,
    key: (String, String),
    site: Site,
    ws: &Workspace,
) {
    match edges.get(&key) {
        Some(&old) => {
            let old_key = (ws.ctxs[old.0].rel.as_str(), old.1);
            let new_key = (ws.ctxs[site.0].rel.as_str(), site.1);
            if new_key < old_key {
                edges.insert(key, site);
            }
        }
        None => {
            edges.insert(key, site);
        }
    }
}

/// Strongly-connected components with a cycle (size > 1, or a self-loop),
/// as sorted name sets, in deterministic order. Iterative Tarjan.
fn cycles(edges: &BTreeMap<(String, String), Site>) -> Vec<BTreeSet<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
        nodes.insert(from.as_str());
        nodes.insert(to.as_str());
    }
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let name_of: Vec<&str> = nodes.iter().copied().collect();
    let n = name_of.len();
    let succ: Vec<Vec<usize>> = name_of
        .iter()
        .map(|&name| {
            adj.get(name)
                .map(|ts| ts.iter().map(|t| index_of[t]).collect())
                .unwrap_or_default()
        })
        .collect();

    // Iterative Tarjan SCC.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<BTreeSet<String>> = Vec::new();
    // (node, next successor position)
    let mut work: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        work.push((start, 0));
        while let Some(&mut (v, ref mut pi)) = work.last_mut() {
            if *pi == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *pi < succ[v].len() {
                let w = succ[v][*pi];
                *pi += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp: BTreeSet<String> = BTreeSet::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.insert(name_of[w].to_string());
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = comp.len() > 1
                        || comp
                            .iter()
                            .any(|m| edges.contains_key(&(m.clone(), m.clone())));
                    if cyclic {
                        out.push(comp);
                    }
                }
                work.pop();
                if let Some(&mut (parent, _)) = work.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(from: &str, to: &str) -> ((String, String), Site) {
        ((from.to_string(), to.to_string()), (0, 1))
    }

    #[test]
    fn dag_has_no_cycles() {
        let edges: BTreeMap<_, _> = [edge("moves", "cells"), edge("cells", "state")]
            .into_iter()
            .collect();
        assert!(cycles(&edges).is_empty());
    }

    #[test]
    fn abba_is_one_scc() {
        let edges: BTreeMap<_, _> = [edge("alpha", "beta"), edge("beta", "alpha")]
            .into_iter()
            .collect();
        let cs = cycles(&edges);
        assert_eq!(cs.len(), 1);
        assert!(cs[0].contains("alpha") && cs[0].contains("beta"));
    }

    #[test]
    fn self_loop_counts() {
        let edges: BTreeMap<_, _> = [edge("cells", "cells")].into_iter().collect();
        assert_eq!(cycles(&edges).len(), 1);
    }

    #[test]
    fn three_cycle_through_dag_tail() {
        let edges: BTreeMap<_, _> = [
            edge("a", "b"),
            edge("b", "c"),
            edge("c", "a"),
            edge("c", "d"),
        ]
        .into_iter()
        .collect();
        let cs = cycles(&edges);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].len(), 3);
        assert!(!cs[0].contains("d"));
    }
}
