//! P2-thread-dependent-chunking: arithmetic that combines a thread count
//! with a chunk/block size is the classic way determinism dies — chunk
//! boundaries must depend only on problem size. Heuristic (warn-level):
//! flag lines where a thread-count identifier meets division/modulo/
//! `div_ceil` alongside a size-ish identifier.

use super::{contains_token, emit, Rule};
use crate::context::{FileContext, Role};
use crate::report::{Finding, Severity};

/// Identifiers that denote a thread count.
const THREAD_TOKENS: &[&str] = &[
    "num_threads",
    "n_threads",
    "nthreads",
    "thread_count",
    "threads",
    "LSI_THREADS",
];

/// Identifiers that suggest the arithmetic feeds a partition size.
const SIZE_TOKENS: &[&str] = &[
    "chunk",
    "chunks",
    "chunk_size",
    "grain",
    "block",
    "stride",
    "len",
    "size",
    "per_thread",
];

/// The P2 rule.
pub struct P2ThreadDependentChunking;

impl Rule for P2ThreadDependentChunking {
    fn id(&self) -> &'static str {
        "P2-thread-dependent-chunking"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "chunk-boundary arithmetic must not involve the thread count"
    }
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if ctx.role == Role::TestOrBench {
            return;
        }
        for (idx, line) in ctx.lines.iter().enumerate() {
            let lineno = idx + 1;
            if ctx.is_test_line(lineno) {
                continue;
            }
            let has_thread = THREAD_TOKENS.iter().any(|t| contains_token(line, t));
            if !has_thread {
                continue;
            }
            let has_div =
                line.contains('/') || line.contains('%') || contains_token(line, "div_ceil");
            if !has_div {
                continue;
            }
            let has_size = SIZE_TOKENS.iter().any(|t| contains_token(line, t));
            if !has_size {
                continue;
            }
            emit(
                ctx,
                out,
                self.id(),
                self.severity(),
                lineno,
                "thread count participates in size/chunk arithmetic; boundaries must depend only on problem size".to_string(),
                "derive chunk boundaries from `len`/`grain` alone and let threads pull chunks (see lsi_linalg::parallel)",
            );
        }
    }
}
