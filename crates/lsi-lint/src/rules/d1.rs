//! D1-nondeterminism: wall-clock and process-identity reads.

use super::{contains_token, emit, Rule};
use crate::context::{FileContext, Role};
use crate::report::{Finding, Severity};

/// Patterns that read the wall clock or other per-run ambient state. Any of
/// these inside experiment or library code silently invalidates the
/// "seed-deterministic outputs" contract.
const PATTERNS: &[&str] = &[
    "SystemTime::now",
    "Instant::now",
    "Utc::now",
    "Local::now",
    "Date::now",
    "process::id",
];

/// Crates whose whole purpose is timing: the serve engine's deadlines and
/// the bench harness's wall-clock columns. D1 does not apply there.
const EXEMPT_CRATES: &[&str] = &["crates/lsi-serve/", "crates/lsi-bench/"];

/// The D1 rule.
pub struct D1Nondeterminism;

impl Rule for D1Nondeterminism {
    fn id(&self) -> &'static str {
        "D1-nondeterminism"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn description(&self) -> &'static str {
        "no wall-clock or process-id reads outside lsi-serve timing paths, benches, tests, examples"
    }
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>) {
        // Examples are narrative demos: their timings are printed for the
        // reader, never recorded as experiment outputs, so the
        // determinism contract does not extend to them.
        if matches!(ctx.role, Role::TestOrBench | Role::Example)
            || EXEMPT_CRATES.iter().any(|c| ctx.rel.starts_with(c))
        {
            return;
        }
        for (idx, line) in ctx.lines.iter().enumerate() {
            let lineno = idx + 1;
            if ctx.is_test_line(lineno) {
                continue;
            }
            for p in PATTERNS {
                if contains_token(line, p) {
                    emit(
                        ctx,
                        out,
                        self.id(),
                        self.severity(),
                        lineno,
                        format!("nondeterministic ambient read `{p}` outside timing-exempt code"),
                        "thread a seed/timestamp parameter in, or justify with `// lsi-lint: allow(D1-nondeterminism, \"...\")`",
                    );
                }
            }
        }
    }
}
