//! E1-panic-policy: `unwrap`/`expect`/`panic!`/`unreachable!` in non-test
//! crate code must live in a function whose doc comment carries a
//! `# Panics` section (CLAUDE.md: errors over panics at API boundaries;
//! panics only for documented programmer-error preconditions).

use super::{emit, token_pos, Rule};
use crate::context::{FileContext, Role};
use crate::report::{Finding, Severity};

/// Panicking constructs the policy covers.
const PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "unimplemented!(",
    "todo!(",
];

/// The E1 rule.
pub struct E1PanicPolicy;

impl Rule for E1PanicPolicy {
    fn id(&self) -> &'static str {
        "E1-panic-policy"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn description(&self) -> &'static str {
        "unwrap/expect/panic! outside tests must sit in a fn documented with `# Panics`"
    }
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>) {
        // Examples are narrative documentation; tests/benches are exempt by
        // role. The policy bites in library and binary sources.
        if !matches!(ctx.role, Role::LibSrc | Role::Bin) {
            return;
        }
        for (idx, line) in ctx.lines.iter().enumerate() {
            let lineno = idx + 1;
            if ctx.is_test_line(lineno) {
                continue;
            }
            for p in PATTERNS {
                if token_pos(line, p).is_none() {
                    continue;
                }
                match ctx.enclosing_fn(lineno) {
                    Some(f) if f.has_panics_doc => {}
                    Some(f) => emit(
                        ctx,
                        out,
                        self.id(),
                        self.severity(),
                        lineno,
                        format!(
                            "`{}` in fn `{}`, whose doc comment has no `# Panics` section",
                            p.trim_matches(|c| c == '.' || c == '('),
                            f.name
                        ),
                        "return a typed error instead, document the precondition under `# Panics`, or justify with `// lsi-lint: allow(E1-panic-policy, \"...\")`",
                    ),
                    None => emit(
                        ctx,
                        out,
                        self.id(),
                        self.severity(),
                        lineno,
                        format!("`{}` outside any function", p.trim_matches(|c| c == '.' || c == '(')),
                        "move the fallible expression into a function and document its `# Panics` contract",
                    ),
                }
            }
        }
    }
}
