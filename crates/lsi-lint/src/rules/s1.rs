//! S1-unsynced-write: durability policy for persistence paths (CLAUDE.md:
//! files that are created or renamed into place must be flushed to stable
//! storage before the operation is treated as done). A write that never
//! reaches `sync_all` / `sync_parent_dir` — in its own fn, in a helper it
//! calls, or in every caller that drives it — leaves a window where a crash
//! silently discards an acknowledged write.
//!
//! Since PR 9 the rule is interprocedural: coverage is the least fixpoint of
//! "reaches a sync transitively, or has callers and all of them are
//! covered". Helper fns whose writes are fsynced by their drivers no longer
//! need inline allows; a write helper nobody syncs still fires.

use super::{contains_token, emit, WorkspaceRule};
use crate::callgraph::Workspace;
use crate::context::Role;
use crate::report::{Finding, Severity};
use crate::symbols::{Facts, WRITE_TOKENS};

/// The S1 rule.
pub struct S1UnsyncedWrite;

impl WorkspaceRule for S1UnsyncedWrite {
    fn id(&self) -> &'static str {
        "S1-unsynced-write"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn description(&self) -> &'static str {
        "created/renamed files must reach sync_all/sync_parent_dir, here or via callers"
    }
    fn explain(&self) -> &'static str {
        "Crash consistency demands that any file created (`File::create`) or renamed into \
         place (`fs::rename`) is flushed to stable storage (`sync_all`, and \
         `sync_parent_dir` for the directory entry after a rename) before the operation \
         reports success — otherwise a crash can discard an acknowledged write while the \
         recovery path believes it durable.\n\n\
         The check is interprocedural over the workspace call graph: a fn is covered when \
         it transitively reaches a sync call through any helper, or when it has callers \
         and every caller is covered (the write helper's bytes are fsynced by whoever \
         drives it). An uncovered write is a deny finding at the write site. Blind spots: \
         trait-object and fn-pointer dispatch contribute no call edges, so a sync hidden \
         behind `dyn` indirection still needs an inline allow naming the invariant."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let covered = ws.graph.covered_by_sync();
        for (fi, ctx) in ws.ctxs.iter().enumerate() {
            // Tests and benches stage disk states on purpose (crash matrices
            // literally install torn files); examples are narrative. The
            // policy bites where production persistence lives.
            if !matches!(ctx.role, Role::LibSrc | Role::Bin) {
                continue;
            }
            for (ji, f) in ws.syms[fi].fns.iter().enumerate() {
                if ctx.is_test_line(f.start_line) || !f.facts.has(Facts::WRITE) {
                    continue;
                }
                let is_covered = ws.node_id(fi, ji).map(|n| covered[n]).unwrap_or(false);
                if is_covered {
                    continue;
                }
                // Report at the first write site in the body.
                for lineno in f.start_line..=f.end_line.min(ctx.lines.len()) {
                    if ctx.is_test_line(lineno) {
                        continue;
                    }
                    let line = &ctx.lines[lineno - 1];
                    if let Some(w) = WRITE_TOKENS.iter().find(|w| contains_token(line, w)) {
                        emit(
                            ctx,
                            out,
                            self.id(),
                            self.severity(),
                            lineno,
                            format!(
                                "fn `{}` calls `{}` but never reaches \
                                 sync_all/sync_parent_dir (not via helpers, and not in \
                                 every caller)",
                                f.name,
                                w.trim_end_matches('(')
                            ),
                            "fsync the file before rename (sync_all) and the parent \
                             directory after (sync_parent_dir) — directly or in a helper \
                             — or add `// lsi-lint: allow(S1, \"...\")` with the reason \
                             this write may be lost on crash",
                        );
                        break;
                    }
                }
            }
        }
    }
}
