//! S1-unsynced-write: durability policy for persistence paths (CLAUDE.md:
//! files that are created or renamed into place must be flushed to stable
//! storage before the operation is treated as done). A function that calls
//! `File::create` or `fs::rename` but never reaches `sync_all` (directly,
//! or via the `sync_parent_dir` helper for the post-rename directory sync)
//! leaves a window where a crash silently discards an acknowledged write.
//! Deny-level: a create/rename that genuinely needs no durability (say, a
//! scratch file handed to a syncing helper) takes an inline allow with its
//! reason.

use super::{contains_token, emit, Rule};
use crate::context::{FileContext, Role};
use crate::report::{Finding, Severity};

/// Calls that make bytes or directory entries that must survive a crash.
const WRITES: &[&str] = &["File::create(", "fs::rename("];
/// Calls that make them durable.
const SYNCS: &[&str] = &["sync_all(", "sync_parent_dir("];

/// The S1 rule.
pub struct S1UnsyncedWrite;

impl Rule for S1UnsyncedWrite {
    fn id(&self) -> &'static str {
        "S1-unsynced-write"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn description(&self) -> &'static str {
        "fns that File::create or fs::rename must reach sync_all/sync_parent_dir"
    }
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>) {
        // Tests and benches stage disk states on purpose (crash matrices
        // literally install torn files); examples are narrative. The policy
        // bites where production persistence lives.
        if !matches!(ctx.role, Role::LibSrc | Role::Bin) {
            return;
        }
        for f in &ctx.fns {
            if ctx.is_test_line(f.start_line) {
                continue;
            }
            // First offending write call in the fn body, and whether any
            // sync call appears anywhere in the same body.
            let mut first_write: Option<(usize, &str)> = None;
            let mut synced = false;
            for lineno in f.start_line..=f.end_line.min(ctx.lines.len()) {
                if ctx.is_test_line(lineno) {
                    continue;
                }
                let line = &ctx.lines[lineno - 1];
                if first_write.is_none() {
                    if let Some(w) = WRITES.iter().find(|w| contains_token(line, w)) {
                        first_write = Some((lineno, w));
                    }
                }
                if SYNCS.iter().any(|s| contains_token(line, s)) {
                    synced = true;
                    break;
                }
            }
            if let (Some((lineno, w)), false) = (first_write, synced) {
                emit(
                    ctx,
                    out,
                    self.id(),
                    self.severity(),
                    lineno,
                    format!(
                        "fn `{}` calls `{}` but never reaches sync_all/sync_parent_dir",
                        f.name,
                        w.trim_end_matches('(')
                    ),
                    "fsync the file before rename (sync_all) and the parent directory after \
                     (sync_parent_dir), or add `// lsi-lint: allow(S1, \"...\")` with the reason \
                     this write may be lost on crash",
                );
            }
        }
    }
}
