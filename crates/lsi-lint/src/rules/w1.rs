//! W1-apply-before-journal: write-ahead ordering for durable mutations
//! (CLAUDE.md: mutations to a durable index go through the write-ahead
//! journal — append + fsync before apply). The crash matrix proves the
//! runtime behavior; this rule pins the *source* ordering so a refactor
//! can't quietly swap the two calls and leave the matrix testing the wrong
//! program.
//!
//! A fn is in scope when it orchestrates both sides: at least one journal
//! append event and at least one in-memory apply event (token-level, or a
//! call into a helper whose summary reaches exactly one of the two facts).
//! Within scope, any apply event before the first append event is a deny
//! finding. Replay and recovery paths apply without appending, so they have
//! no append event and stay out of scope by construction.

use super::{contains_token, emit, WorkspaceRule};
use crate::callgraph::Workspace;
use crate::context::Role;
use crate::report::{Finding, Severity};
use crate::symbols::{Facts, APPEND_TOKENS, APPLY_TOKENS};

/// The W1 rule.
pub struct W1ApplyBeforeJournal;

/// One ordered event in a fn body.
#[derive(Debug, Clone)]
struct Event {
    line: usize,
    /// False = append-side, true = apply-side. Sort puts appends first on a
    /// shared line: `append(...)?; apply(...)` one-liners are legal.
    is_apply: bool,
    what: String,
}

impl WorkspaceRule for W1ApplyBeforeJournal {
    fn id(&self) -> &'static str {
        "W1-apply-before-journal"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn description(&self) -> &'static str {
        "durable mutation paths must journal-append (fsync) before the in-memory apply"
    }
    fn explain(&self) -> &'static str {
        "The durability contract (CLAUDE.md, proven by tests/crash_matrix.rs) is \
         append-fsync-before-apply: a mutation record lands in the write-ahead journal \
         and is fsynced before the in-memory index changes, so a crash between the two \
         replays the mutation instead of losing an acknowledged write.\n\n\
         The rule walks each fn that orchestrates both sides — a journal append event \
         (`journal.append(…)`, `wal.append(…)`, `.append(&MutationRecord::…)`, or a call \
         into a helper whose call-graph summary reaches an append but no apply) and an \
         in-memory apply event (`index.add_document(…)` / `index.add_document_vector(…)` \
         / `index.retire_document(…)`, or a call into an apply-only helper) — in source \
         order, and denies any apply reachable before the first append. Fns with no \
         append event (replay, recovery, non-durable construction) are out of scope. \
         Calls whose summaries reach both facts are neutral: the callee is checked on \
         its own."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for (fi, ctx) in ws.ctxs.iter().enumerate() {
            if !matches!(ctx.role, Role::LibSrc | Role::Bin) {
                continue;
            }
            for (ji, f) in ws.syms[fi].fns.iter().enumerate() {
                if ctx.is_test_line(f.start_line) {
                    continue;
                }
                let mut events: Vec<Event> = Vec::new();
                for lineno in f.start_line..=f.end_line.min(ctx.lines.len()) {
                    if ctx.is_test_line(lineno) {
                        continue;
                    }
                    let line = &ctx.lines[lineno - 1];
                    if APPEND_TOKENS.iter().any(|t| contains_token(line, t)) {
                        events.push(Event {
                            line: lineno,
                            is_apply: false,
                            what: "journal append".to_string(),
                        });
                    }
                    if let Some(t) = APPLY_TOKENS.iter().find(|t| contains_token(line, t)) {
                        events.push(Event {
                            line: lineno,
                            is_apply: true,
                            what: format!("`{}…)`", t.trim_end_matches('(')),
                        });
                    }
                }
                if let Some(node) = ws.node_id(fi, ji) {
                    for (ci, call) in f.calls.iter().enumerate() {
                        let targets = &ws.graph.resolved[node][ci];
                        if targets.is_empty() || ctx.is_test_line(call.line) {
                            continue;
                        }
                        let any_append = targets
                            .iter()
                            .any(|&t| ws.graph.reach[t].has(Facts::APPEND));
                        let any_apply =
                            targets.iter().any(|&t| ws.graph.reach[t].has(Facts::APPLY));
                        if any_append && !any_apply {
                            events.push(Event {
                                line: call.line,
                                is_apply: false,
                                what: format!("helper `{}` (appends)", call.name),
                            });
                        } else if any_apply && !any_append {
                            events.push(Event {
                                line: call.line,
                                is_apply: true,
                                what: format!("call to apply-only helper `{}`", call.name),
                            });
                        }
                    }
                }
                events.sort_by_key(|e| (e.line, e.is_apply));
                if !events.iter().any(|e| e.is_apply) || !events.iter().any(|e| !e.is_apply) {
                    continue;
                }
                let mut appended = false;
                for e in &events {
                    if !e.is_apply {
                        appended = true;
                    } else if !appended {
                        emit(
                            ctx,
                            out,
                            self.id(),
                            self.severity(),
                            e.line,
                            format!(
                                "fn `{}` applies {} before the write-ahead journal append \
                                 — a crash here loses an acknowledged mutation",
                                f.name, e.what
                            ),
                            "append the MutationRecord to the journal (which fsyncs) \
                             before mutating the in-memory index; see \
                             lsi_core::journal::DurableIndex::add_document for the \
                             canonical ordering",
                        );
                        break;
                    }
                }
            }
        }
    }
}
