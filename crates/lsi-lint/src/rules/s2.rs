//! S2-unchecked-length-alloc: reader hardening policy (CLAUDE.md: fns that
//! decode on-disk bytes must bound every decoded length against a constant
//! or the remaining input before allocating from it). A reader that feeds a
//! `from_le_bytes`/`read_exact` value straight into `Vec::with_capacity` or
//! `vec![0…; n]` turns four corrupt bytes into a multi-gigabyte allocation —
//! an abort, not the typed `StorageError` the corruption paths promise.
//! Warn-level: the heuristic can't prove a bound flows into the allocation,
//! only that some bounding idiom (a `MAX_*` cap, `.min(…)`, or `checked_*`
//! arithmetic) appears in the fn at or before the allocation.

use super::{emit, Rule};
use crate::context::{FileContext, Role};
use crate::report::{Finding, Severity};

/// Tokens that mark a fn as decoding untrusted on-disk bytes.
const DECODES: &[&str] = &["from_le_bytes(", "read_exact("];
/// Allocation sites whose size may derive from decoded input.
const ALLOCS: &[&str] = &["with_capacity(", "vec![0"];
/// Bounding idioms: a named cap constant, a clamp, or overflow-checked size
/// arithmetic (whose `None` arm rejects the decoded value).
const GUARDS: &[&str] = &[
    "MAX_",
    ".min(",
    "checked_mul(",
    "checked_add(",
    "checked_sub(",
];

/// The S2 rule.
pub struct S2UncheckedLengthAlloc;

impl Rule for S2UncheckedLengthAlloc {
    fn id(&self) -> &'static str {
        "S2-unchecked-length-alloc"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "fns that decode on-disk bytes must bound lengths before allocating"
    }
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>) {
        // Tests and benches allocate from literals they just wrote; the
        // policy bites where production readers parse files a crash (or a
        // fuzzer) may have mangled.
        if !matches!(ctx.role, Role::LibSrc | Role::Bin) {
            return;
        }
        for f in &ctx.fns {
            if ctx.is_test_line(f.start_line) {
                continue;
            }
            // Line-ordered scan: an allocation is suspect once a decode has
            // been seen and no bounding idiom has appeared yet. Guards are
            // checked first so a same-line clamp
            // (`with_capacity(n.min(1 << 16))`) stays quiet.
            let mut decoded = false;
            let mut guarded = false;
            for lineno in f.start_line..=f.end_line.min(ctx.lines.len()) {
                if ctx.is_test_line(lineno) {
                    continue;
                }
                let line = &ctx.lines[lineno - 1];
                if GUARDS.iter().any(|g| line.contains(g)) {
                    guarded = true;
                }
                if !decoded && DECODES.iter().any(|d| line.contains(d)) {
                    decoded = true;
                }
                if decoded && !guarded {
                    if let Some(a) = ALLOCS.iter().find(|a| line.contains(*a)) {
                        emit(
                            ctx,
                            out,
                            self.id(),
                            self.severity(),
                            lineno,
                            format!(
                                "fn `{}` decodes on-disk bytes, then reaches `{}` with no \
                                 bound in sight",
                                f.name,
                                a.trim_end_matches('(')
                            ),
                            "cap the decoded length against a MAX_* constant or the remaining \
                             input (`.min(…)`, `checked_mul`) before allocating, or add \
                             `// lsi-lint: allow(S2, \"...\")` with the reason the size is \
                             already trusted",
                        );
                        break;
                    }
                }
            }
        }
    }
}
