//! P1-raw-threads: `thread::spawn`/`thread::scope`/`thread::Builder` are
//! reserved for the deterministic executor (`lsi_linalg::parallel`) and the
//! serve worker pool. Everything else must go through `for_chunks_mut` /
//! `map_chunks` so chunk boundaries stay thread-count-invariant.

use super::{contains_token, emit, Rule};
use crate::context::{FileContext, Role};
use crate::report::{Finding, Severity};

/// Thread-creation entry points.
const PATTERNS: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];

/// The only files allowed to create threads: the deterministic executor,
/// the serve worker pool, and the process-isolation service threads (the
/// shard daemon's connection handlers and the supervisor's heartbeat —
/// I/O-bound service loops, not data-parallel kernels, so chunk-boundary
/// determinism does not apply to them).
const ALLOWLIST: &[&str] = &[
    "crates/lsi-linalg/src/parallel.rs",
    "crates/lsi-serve/src/daemon.rs",
    "crates/lsi-serve/src/engine.rs",
    "crates/lsi-serve/src/supervisor.rs",
];

/// The P1 rule.
pub struct P1RawThreads;

impl Rule for P1RawThreads {
    fn id(&self) -> &'static str {
        "P1-raw-threads"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn description(&self) -> &'static str {
        "no raw thread creation outside lsi_linalg::parallel and the lsi-serve worker pool"
    }
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if ctx.role == Role::TestOrBench || ALLOWLIST.contains(&ctx.rel.as_str()) {
            return;
        }
        for (idx, line) in ctx.lines.iter().enumerate() {
            let lineno = idx + 1;
            if ctx.is_test_line(lineno) {
                continue;
            }
            for p in PATTERNS {
                if contains_token(line, p) {
                    emit(
                        ctx,
                        out,
                        self.id(),
                        self.severity(),
                        lineno,
                        format!("raw `{p}` outside the sanctioned executors"),
                        "route the work through `lsi_linalg::parallel::{for_chunks_mut, map_chunks}`",
                    );
                }
            }
        }
    }
}
