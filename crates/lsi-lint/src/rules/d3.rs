//! D3-hasher-order: iterating a `HashMap`/`HashSet` in code that produces
//! ordered output (tables, files, `Vec`s, float accumulations) is
//! run-to-run nondeterministic — `RandomState` reseeds per process.
//!
//! Detection is two-pass and token-level: pass 1 collects identifiers bound
//! or declared with a hash-map/set type in this file; pass 2 flags
//! iteration over those identifiers unless the same statement visibly
//! restores an order (a `sort` call, a `BTreeMap`/`BTreeSet` collect) or
//! reduces order-insensitively (`count`/`sum`/`min`/`max`/`all`/`any`).

use super::{contains_token, emit, statement_from, token_pos, Rule};
use crate::context::{FileContext, Role};
use crate::lexer::is_ident_byte;
use crate::report::{Finding, Severity};
use std::collections::BTreeSet;

/// Chain fragments that make an iteration order-safe.
const ORDER_SAFE: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "sorted",
    "BTreeMap",
    "BTreeSet",
    ".count()",
    ".sum()",
    ".sum::",
    ".product()",
    ".min()",
    ".max()",
    ".all(",
    ".any(",
    ".contains(",
    ".len()",
    ".is_empty()",
];

/// Iteration entry points on a hash collection.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
];

/// The D3 rule.
pub struct D3HasherOrder;

/// Collects identifiers this file binds to a `HashMap`/`HashSet` — `let`
/// bindings, struct fields, and fn parameters.
fn hash_idents(ctx: &FileContext) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in &ctx.lines {
        if !(line.contains("HashMap") || line.contains("HashSet")) {
            continue;
        }
        let t = line.trim_start();
        // `let [mut] name … = … Hash{Map,Set} …` or `let name: Hash… = …`.
        if let Some(rest) = t.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            if let Some(name) = leading_ident(rest) {
                names.insert(name);
            }
            continue;
        }
        // `[pub] name: Hash{Map,Set}<…>` — a struct field or fn param; also
        // covers `name: &HashMap<…>`.
        let field = t.strip_prefix("pub ").unwrap_or(t);
        if let Some(colon) = field.find(':') {
            let (head, tail) = field.split_at(colon);
            if (tail.contains("HashMap") || tail.contains("HashSet"))
                && !head.contains('=')
                && head.split_whitespace().count() == 1
            {
                if let Some(name) = leading_ident(head) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// The identifier at the start of `s`, if any.
fn leading_ident(s: &str) -> Option<String> {
    let end = s.bytes().position(|b| !is_ident_byte(b)).unwrap_or(s.len());
    if end == 0 || s.as_bytes()[0].is_ascii_digit() {
        None
    } else {
        Some(s[..end].to_string())
    }
}

impl Rule for D3HasherOrder {
    fn id(&self) -> &'static str {
        "D3-hasher-order"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn description(&self) -> &'static str {
        "no unordered HashMap/HashSet iteration feeding tables, files, or Vec outputs"
    }
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if ctx.role == Role::TestOrBench {
            return;
        }
        let names = hash_idents(ctx);
        if names.is_empty() {
            return;
        }
        for (idx, line) in ctx.lines.iter().enumerate() {
            let lineno = idx + 1;
            if ctx.is_test_line(lineno) {
                continue;
            }
            for name in &names {
                if !contains_token(line, name) {
                    continue;
                }
                // Method chains may break lines after the receiver
                // (`counts\n.into_iter()`), so match against the
                // whitespace-normalized statement, not the single line.
                let stmt = normalize(&statement_from(ctx, lineno, 8));
                let iterated = ITER_METHODS.iter().any(|m| {
                    contains_token(&stmt, &format!("{name}{m}"))
                        || contains_token(&stmt, &format!("self.{name}{m}"))
                }) || for_loop_over(line, name);
                if !iterated {
                    continue;
                }
                if ORDER_SAFE.iter().any(|s| stmt.contains(s)) {
                    continue;
                }
                emit(
                    ctx,
                    out,
                    self.id(),
                    self.severity(),
                    lineno,
                    format!("iteration over hash-ordered `{name}` without restoring a deterministic order"),
                    "collect and sort by key, switch to BTreeMap/BTreeSet, or justify with `// lsi-lint: allow(D3-hasher-order, \"...\")`",
                );
            }
        }
    }
}

/// Collapses whitespace runs to single spaces and deletes spaces adjacent to
/// `.`/`(`/`)`, so split method chains match single-line patterns.
fn normalize(stmt: &str) -> String {
    let mut out = String::with_capacity(stmt.len());
    let mut pending_space = false;
    for c in stmt
        .split_whitespace()
        .flat_map(|w| w.chars().chain(std::iter::once('\u{0}')))
    {
        if c == '\u{0}' {
            pending_space = true;
            continue;
        }
        if pending_space {
            if !matches!(c, '.' | '(' | ')') && !out.ends_with(['.', '(']) && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
        }
        out.push(c);
    }
    out
}

/// True for `for … in` loops whose iterated expression mentions `name`
/// (`for (k, v) in &map`, `for k in map.keys()` is caught by the method
/// check; this catches the bare `&map`/`map` form).
fn for_loop_over(line: &str, name: &str) -> bool {
    let Some(for_at) = token_pos(line, "for") else {
        return false;
    };
    let rest = &line[for_at..];
    let Some(in_at) = token_pos(rest, "in") else {
        return false;
    };
    let expr = &rest[in_at + 2..];
    contains_token(expr, name) || contains_token(expr, &format!("self.{name}"))
}
