//! C1-unpolled-hot-loop: cancellation responsiveness for scoring paths
//! (the PR 2 deadline invariant). A fn that takes a `CancelToken` and loops
//! is promising bounded latency; if neither it nor anything it calls ever
//! polls the token (`is_cancelled()` / `.check()`), the deadline is
//! decorative — a long scan runs to completion no matter what the caller's
//! budget says.
//!
//! Warn-level: the loop may be trivially short, and reach-based analysis is
//! fn-granular (one polled loop quiets a sibling unpolled one), so findings
//! are strong hints rather than proofs.

use super::{emit, WorkspaceRule};
use crate::callgraph::Workspace;
use crate::context::Role;
use crate::report::{Finding, Severity};
use crate::symbols::Facts;

/// The C1 rule.
pub struct C1UnpolledHotLoop;

impl WorkspaceRule for C1UnpolledHotLoop {
    fn id(&self) -> &'static str {
        "C1-unpolled-hot-loop"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "fns taking a CancelToken that loop must poll it (directly or via a helper)"
    }
    fn explain(&self) -> &'static str {
        "Query deadlines work by cooperative polling: scoring loops check the \
         `CancelToken` every `CHECK_INTERVAL` iterations (`token.check()?`) so a \
         deadline or explicit cancel bounds latency. A fn that accepts a token in its \
         parameter list and contains a loop, but whose call-graph summary never \
         reaches `is_cancelled(` or `.check()`, silently drops that contract: the \
         caller believes the work is cancellable and it is not.\n\n\
         The check is interprocedural — delegating the poll to a helper inside the \
         loop counts. Fns that merely *return* a token (constructors) are out of \
         scope: only a `CancelToken` among the parameters creates the obligation."
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for (fi, ctx) in ws.ctxs.iter().enumerate() {
            if !matches!(ctx.role, Role::LibSrc | Role::Bin) {
                continue;
            }
            for (ji, f) in ws.syms[fi].fns.iter().enumerate() {
                if ctx.is_test_line(f.start_line) {
                    continue;
                }
                // Only a token in the parameter list (before the return
                // arrow) obligates polling.
                let params = match f.signature.find("->") {
                    Some(pos) => &f.signature[..pos],
                    None => f.signature.as_str(),
                };
                if !params.contains("CancelToken") {
                    continue;
                }
                let first_loop = f.loop_lines.iter().copied().find(|&l| !ctx.is_test_line(l));
                let Some(loop_line) = first_loop else {
                    continue;
                };
                let polls = ws
                    .node_id(fi, ji)
                    .map(|n| ws.graph.reach[n].has(Facts::POLL))
                    .unwrap_or(false);
                if polls {
                    continue;
                }
                emit(
                    ctx,
                    out,
                    self.id(),
                    self.severity(),
                    loop_line,
                    format!(
                        "fn `{}` takes a CancelToken and loops, but neither it nor its \
                         callees ever poll the token",
                        f.name
                    ),
                    "poll inside the loop — `if i % CHECK_INTERVAL == 0 { token.check()?; }` \
                     — or pass the token down to a helper that does",
                );
            }
        }
    }
}
