//! K1-thread-dependent-blocking: kernel blocking geometry (GEMM panel
//! sizes, pack layouts) must be a pure function of problem size. Deriving
//! `kc`/`mc`/`nc` or a pack decision from the thread count or the host's
//! CPU count silently changes accumulation order with the environment and
//! breaks bitwise reproducibility. Heuristic (warn-level): flag lines
//! where a blocking-geometry identifier meets a runtime-parallelism
//! identifier.

use super::{contains_token, emit, Rule};
use crate::context::{FileContext, Role};
use crate::report::{Finding, Severity};

/// Identifiers that denote kernel blocking geometry.
const GEOMETRY_TOKENS: &[&str] = &[
    "kc",
    "mc",
    "nc",
    "kc_eff",
    "block_plan",
    "BlockPlan",
    "pack_a",
    "pack_b",
    "micro_kernel",
];

/// Identifiers whose value varies with the execution environment.
const RUNTIME_TOKENS: &[&str] = &[
    "num_threads",
    "n_threads",
    "nthreads",
    "thread_count",
    "threads",
    "LSI_THREADS",
    "available_parallelism",
    "num_cpus",
];

/// The K1 rule.
pub struct K1ThreadDependentBlocking;

impl Rule for K1ThreadDependentBlocking {
    fn id(&self) -> &'static str {
        "K1-thread-dependent-blocking"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn description(&self) -> &'static str {
        "kernel blocking/packing geometry must depend only on problem size"
    }
    fn check(&self, ctx: &FileContext, out: &mut Vec<Finding>) {
        if ctx.role == Role::TestOrBench {
            return;
        }
        for (idx, line) in ctx.lines.iter().enumerate() {
            let lineno = idx + 1;
            if ctx.is_test_line(lineno) {
                continue;
            }
            let has_geometry = GEOMETRY_TOKENS.iter().any(|t| contains_token(line, t));
            if !has_geometry {
                continue;
            }
            let has_runtime = RUNTIME_TOKENS.iter().any(|t| contains_token(line, t));
            if !has_runtime {
                continue;
            }
            emit(
                ctx,
                out,
                self.id(),
                self.severity(),
                lineno,
                "blocking/packing geometry meets a runtime-parallelism value; panel and pack decisions must be size-only".to_string(),
                "choose kc/mc/nc and pack layouts from problem dimensions alone (see lsi_linalg::gemm::block_plan)",
            );
        }
    }
}
