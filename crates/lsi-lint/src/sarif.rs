//! A minimal, dependency-free SARIF 2.1.0 renderer.
//!
//! The output carries exactly what CI annotation tooling needs — the rule
//! catalog (`tool.driver.rules` with stable ids and default levels) and one
//! `result` per finding with a physical location — and nothing else. Field
//! order is fixed and findings are emitted in the caller's (already sorted)
//! order, so two runs over the same tree produce byte-identical reports.

use crate::report::{Finding, Severity};

/// One catalog entry: id, deny/warn level, one-line description.
fn rule_catalog() -> Vec<(&'static str, Severity, &'static str)> {
    let mut rules: Vec<(&'static str, Severity, &'static str)> = vec![(
        "A0-allow-syntax",
        Severity::Deny,
        "lsi-lint allow directives must parse and carry a justification",
    )];
    for r in crate::rules::registry() {
        rules.push((r.id(), r.severity(), r.description()));
    }
    for r in crate::rules::workspace_registry() {
        rules.push((r.id(), r.severity(), r.description()));
    }
    rules.sort_by_key(|(id, _, _)| *id);
    rules
}

/// SARIF level string for a severity.
fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Deny => "error",
        Severity::Warn => "warning",
    }
}

/// Renders findings as a SARIF 2.1.0 document. Deterministic: byte-identical
/// output for identical findings.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::with_capacity(4096 + findings.len() * 256);
    out.push_str("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"lsi-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/lsi-repro\",\n");
    out.push_str("          \"rules\": [\n");
    let catalog = rule_catalog();
    for (i, (id, sev, desc)) in catalog.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"defaultConfiguration\": {{\"level\": {}}}}}{}\n",
            json_str(id),
            json_str(desc),
            json_str(level(*sev)),
            if i + 1 == catalog.len() { "" } else { "," }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            json_str(f.rule),
            json_str(level(f.severity)),
            json_str(&f.message),
            json_str(&f.path),
            f.line,
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "W1-apply-before-journal",
            severity: Severity::Deny,
            path: "crates/lsi-core/src/journal.rs".to_string(),
            line: 42,
            message: "apply before append".to_string(),
            snippet: String::new(),
            hint: String::new(),
        }
    }

    #[test]
    fn catalog_covers_every_rule_once() {
        let s = render_sarif(&[]);
        for r in crate::rules::registry() {
            assert!(
                s.contains(&format!("\"id\": \"{}\"", r.id())),
                "{} missing",
                r.id()
            );
        }
        for r in crate::rules::workspace_registry() {
            assert!(
                s.contains(&format!("\"id\": \"{}\"", r.id())),
                "{} missing",
                r.id()
            );
        }
        assert!(s.contains("\"id\": \"A0-allow-syntax\""));
    }

    #[test]
    fn results_carry_location_and_level() {
        let s = render_sarif(&[sample()]);
        assert!(s.contains("\"ruleId\": \"W1-apply-before-journal\""));
        assert!(s.contains("\"level\": \"error\""));
        assert!(s.contains("\"startLine\": 42"));
        assert!(s.contains("crates/lsi-core/src/journal.rs"));
    }

    #[test]
    fn deterministic_output() {
        let a = render_sarif(&[sample()]);
        let b = render_sarif(&[sample()]);
        assert_eq!(a, b);
    }
}
