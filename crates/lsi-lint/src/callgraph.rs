//! The workspace call graph and summary-based dataflow.
//!
//! [`Workspace::build`] takes every file's [`FileContext`], extracts
//! [`FileSymbols`], resolves call sites to candidate callees by name (with
//! module / impl-type filtering for qualified calls), and then propagates
//! [`Facts`] summaries and transitive lock-acquisition sets to a fixpoint.
//! Workspace rules ([`crate::rules::WorkspaceRule`]) consume the result.
//!
//! # Resolution rules
//!
//! * **Bare** `helper(…)` — same-file fns of that name win; otherwise
//!   same-crate; otherwise any workspace fn of that name.
//! * **Qualified** `a::b::f(…)` — fns of that name whose impl self-type or
//!   module tail equals the last qualifier segment; falls back to the
//!   name-global set (re-exports move items across modules).
//! * **Method** `recv.f(…)` — the union of every impl method of that name
//!   anywhere in the workspace (no type inference).
//!
//! Unresolved calls (std, closures, trait objects) contribute no edges.
//! The union semantics over-approximate: summaries may claim a fact the
//! runtime path never exercises. Rules are written so that over-approximated
//! *coverage* facts (reaches-sync, reaches-poll) err toward silence, and
//! ordering rules (W1) treat ambiguous callees as neutral events.
//!
//! Lock summaries are stricter: common method names (`read`, `write`,
//! `append`, `into_inner`) union-resolve to dozens of unrelated impls, and
//! letting lock sets flow across those blind edges smears the serve tier's
//! locks over the whole workspace. So [`CallGraph::lock_names`] propagates
//! only along *confident* edges — bare calls, qualified calls matched by
//! impl type or module, and `self.method()` narrowed to the caller's own
//! impl type — recorded per call site in [`CallGraph::lock_confident`].
//! Hazard rules (L1) likewise only draw interprocedural edges from
//! confident call sites.
//!
//! Everything iterates in file/fn declaration order or `BTreeMap` order, so
//! the graph — and every report derived from it — is deterministic.

use crate::context::FileContext;
use crate::symbols::{CallKind, Facts, FileSymbols};
use std::collections::{BTreeMap, BTreeSet};

/// Identifies one function in the workspace: file index + fn index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef {
    /// Index into [`Workspace::ctxs`] / [`Workspace::syms`].
    pub file: usize,
    /// Index into that file's [`FileSymbols::fns`].
    pub fn_idx: usize,
}

/// The resolved call graph plus fixpoint summaries.
#[derive(Debug)]
pub struct CallGraph {
    /// All fns, in file order then declaration order.
    pub nodes: Vec<NodeRef>,
    /// Name → node ids bearing that fn name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// `resolved[n][c]` — candidate callee node ids (sorted, deduped) for
    /// the `c`-th call site of node `n`; empty when unresolved.
    pub resolved: Vec<Vec<Vec<usize>>>,
    /// `lock_confident[n][c]` — whether the `c`-th call site of node `n`
    /// resolved confidently enough to carry lock summaries (bare/qualified
    /// resolution or a `self.method()` narrowed by impl type); blind
    /// method-name unions stay `false`.
    pub lock_confident: Vec<Vec<bool>>,
    /// Direct caller node ids per node (sorted, deduped).
    pub callers: Vec<Vec<usize>>,
    /// Local facts per node (copied from symbols).
    pub local: Vec<Facts>,
    /// Transitive facts per node: local facts ∪ every resolved callee's
    /// reach, to a fixpoint.
    pub reach: Vec<Facts>,
    /// Transitive lock-receiver names acquired by each node or its callees.
    pub lock_names: Vec<BTreeSet<String>>,
}

/// Everything a workspace rule sees: per-file contexts, per-file symbols
/// (parallel vectors), and the call graph over them.
#[derive(Debug)]
pub struct Workspace {
    /// Per-file analysis contexts, in the order given to [`Workspace::build`].
    pub ctxs: Vec<FileContext>,
    /// Per-file symbols, parallel to `ctxs`.
    pub syms: Vec<FileSymbols>,
    /// The resolved call graph.
    pub graph: CallGraph,
}

impl Workspace {
    /// Builds symbols and the call graph for a set of file contexts.
    pub fn build(ctxs: Vec<FileContext>) -> Workspace {
        let syms: Vec<FileSymbols> = ctxs.iter().map(FileSymbols::extract).collect();
        let graph = CallGraph::build(&syms);
        Workspace { ctxs, syms, graph }
    }

    /// The node id of fn `fn_idx` in file `file`, if present in the graph.
    pub fn node_id(&self, file: usize, fn_idx: usize) -> Option<usize> {
        self.graph
            .nodes
            .iter()
            .position(|n| n.file == file && n.fn_idx == fn_idx)
    }

    /// Total parsed `lsi-lint: allow` directives across all files.
    pub fn allow_count(&self) -> usize {
        self.ctxs.iter().map(|c| c.allows.len()).sum()
    }
}

impl CallGraph {
    /// Resolves calls and runs the summary fixpoints.
    pub fn build(syms: &[FileSymbols]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, fs) in syms.iter().enumerate() {
            for (ji, f) in fs.fns.iter().enumerate() {
                let id = nodes.len();
                nodes.push(NodeRef {
                    file: fi,
                    fn_idx: ji,
                });
                by_name.entry(f.name.clone()).or_default().push(id);
            }
        }

        let sym = |id: usize| -> &crate::symbols::FnSym {
            let n = nodes[id];
            &syms[n.file].fns[n.fn_idx]
        };

        let mut resolved: Vec<Vec<Vec<usize>>> = Vec::with_capacity(nodes.len());
        let mut lock_confident: Vec<Vec<bool>> = Vec::with_capacity(nodes.len());
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for id in 0..nodes.len() {
            let caller_ref = nodes[id];
            let f = sym(id);
            let mut per_call = Vec::with_capacity(f.calls.len());
            let mut per_call_conf = Vec::with_capacity(f.calls.len());
            for call in &f.calls {
                let (mut targets, confident) = resolve(call, caller_ref, &nodes, syms, &by_name);
                targets.sort_unstable();
                targets.dedup();
                for &t in &targets {
                    callers[t].push(id);
                }
                per_call.push(targets);
                per_call_conf.push(confident);
            }
            resolved.push(per_call);
            lock_confident.push(per_call_conf);
        }
        for c in &mut callers {
            c.sort_unstable();
            c.dedup();
        }

        let local: Vec<Facts> = (0..nodes.len()).map(|id| sym(id).facts).collect();
        let mut reach = local.clone();
        let mut lock_names: Vec<BTreeSet<String>> = (0..nodes.len())
            .map(|id| sym(id).locks.iter().map(|l| l.name.clone()).collect())
            .collect();

        // Fixpoint: OR facts along every call edge, but union lock sets only
        // along confident edges (blind method unions would smear lock names
        // workspace-wide). Both lattices are small and monotone; iterate
        // until nothing changes.
        loop {
            let mut changed = false;
            for id in 0..nodes.len() {
                for (ci, targets) in resolved[id].iter().enumerate() {
                    for &t in targets {
                        let callee_reach = reach[t];
                        if reach[id].merge(callee_reach) {
                            changed = true;
                        }
                        if lock_confident[id][ci] && !lock_names[t].is_empty() && t != id {
                            let extra: Vec<String> = lock_names[t]
                                .iter()
                                .filter(|n| !lock_names[id].contains(*n))
                                .cloned()
                                .collect();
                            if !extra.is_empty() {
                                lock_names[id].extend(extra);
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        CallGraph {
            nodes,
            by_name,
            resolved,
            lock_confident,
            callers,
            local,
            reach,
            lock_names,
        }
    }

    /// Least-fixpoint "this fn's writes end up durable" predicate for S1:
    /// a fn is covered when it transitively reaches a sync call itself, or
    /// when it has at least one caller and *every* caller is covered (the
    /// helper's write is fsynced by whoever drives it). Recursive cliques
    /// with no sync anywhere stay uncovered.
    pub fn covered_by_sync(&self) -> Vec<bool> {
        let mut covered: Vec<bool> = self.reach.iter().map(|r| r.has(Facts::SYNC)).collect();
        loop {
            let mut changed = false;
            for id in 0..covered.len() {
                if covered[id] {
                    continue;
                }
                let cs = &self.callers[id];
                if !cs.is_empty() && cs.iter().all(|&c| covered[c]) {
                    covered[id] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        covered
    }
}

/// Candidate callees for one call site, plus whether the resolution is
/// confident enough to carry lock summaries (see module docs).
fn resolve(
    call: &crate::symbols::Call,
    caller: NodeRef,
    nodes: &[NodeRef],
    syms: &[FileSymbols],
    by_name: &BTreeMap<String, Vec<usize>>,
) -> (Vec<usize>, bool) {
    let Some(named) = by_name.get(&call.name) else {
        return (Vec::new(), false);
    };
    let fn_of = |id: usize| -> &crate::symbols::FnSym {
        let n = nodes[id];
        &syms[n.file].fns[n.fn_idx]
    };
    match &call.kind {
        CallKind::Bare => {
            let same_file: Vec<usize> = named
                .iter()
                .copied()
                .filter(|&id| nodes[id].file == caller.file)
                .collect();
            if !same_file.is_empty() {
                return (same_file, true);
            }
            let caller_crate = syms[caller.file].module.first();
            let same_crate: Vec<usize> = named
                .iter()
                .copied()
                .filter(|&id| syms[nodes[id].file].module.first() == caller_crate)
                .collect();
            if !same_crate.is_empty() {
                return (same_crate, true);
            }
            (named.clone(), true)
        }
        CallKind::Qualified(q) => {
            let matched: Vec<usize> = named
                .iter()
                .copied()
                .filter(|&id| {
                    let ty_ok = fn_of(id).self_type.as_deref() == Some(q.as_str());
                    let mod_ok =
                        syms[nodes[id].file].module.last().map(String::as_str) == Some(q.as_str());
                    ty_ok || mod_ok
                })
                .collect();
            if !matched.is_empty() {
                return (matched, true);
            }
            // Re-exports move items across module boundaries; fall back to
            // the global name set rather than dropping the edge — but that
            // fallback is a guess, so it does not carry lock summaries.
            (named.clone(), false)
        }
        CallKind::Method(recv) => {
            // `self.helper()` stays on the caller's own impl type when that
            // narrows to something nonempty — the one receiver whose type
            // is statically known without inference.
            if recv.as_deref() == Some("self") {
                if let Some(own_ty) = syms[caller.file].fns[caller.fn_idx].self_type.as_deref() {
                    let own: Vec<usize> = named
                        .iter()
                        .copied()
                        .filter(|&id| fn_of(id).self_type.as_deref() == Some(own_ty))
                        .collect();
                    if !own.is_empty() {
                        return (own, true);
                    }
                }
            }
            // Other receivers: union over every impl method of this name —
            // a blind dispatch guess, fine for coverage facts, never for
            // lock summaries.
            let union: Vec<usize> = named
                .iter()
                .copied()
                .filter(|&id| fn_of(id).self_type.is_some())
                .collect();
            (union, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let ctxs = files
            .iter()
            .map(|(rel, src)| FileContext::build(rel, src))
            .collect();
        Workspace::build(ctxs)
    }

    #[test]
    fn facts_propagate_through_helpers() {
        let w = ws(&[(
            "crates/lsi-core/src/storage.rs",
            "fn save(p: &Path) -> io::Result<()> {\n    let f = File::create(p)?;\n    finish(&f)\n}\nfn finish(f: &File) -> io::Result<()> {\n    f.sync_all()\n}\n",
        )]);
        let save = w.node_id(0, 0).expect("save indexed");
        let finish = w.node_id(0, 1).expect("finish indexed");
        assert!(w.graph.local[finish].has(Facts::SYNC));
        assert!(!w.graph.local[save].has(Facts::SYNC));
        assert!(
            w.graph.reach[save].has(Facts::SYNC),
            "summary flows up the call"
        );
        assert!(w.graph.reach[save].has(Facts::WRITE));
    }

    #[test]
    fn cross_file_bare_calls_resolve_same_crate_first() {
        let w = ws(&[
            (
                "crates/lsi-core/src/a.rs",
                "pub fn driver() {\n    helper();\n}\n",
            ),
            (
                "crates/lsi-core/src/b.rs",
                "pub fn helper() {\n    f.sync_all();\n}\n",
            ),
            (
                "crates/lsi-serve/src/c.rs",
                "pub fn helper() {\n    let x = 1;\n}\n",
            ),
        ]);
        let driver = w.node_id(0, 0).expect("driver indexed");
        let targets = &w.graph.resolved[driver][0];
        assert_eq!(targets.len(), 1, "same-crate helper wins over lsi-serve's");
        assert!(w.graph.reach[driver].has(Facts::SYNC));
    }

    #[test]
    fn covered_by_sync_includes_caller_coverage() {
        let w = ws(&[(
            "crates/lsi-core/src/s.rs",
            "fn raw_write(p: &Path) {\n    let f = File::create(p);\n}\nfn commit(p: &Path) {\n    raw_write(p);\n    d.sync_all();\n}\n",
        )]);
        let raw = w.node_id(0, 0).expect("raw_write indexed");
        let commit = w.node_id(0, 1).expect("commit indexed");
        let covered = w.graph.covered_by_sync();
        assert!(covered[commit]);
        assert!(covered[raw], "every caller syncs, so the helper is covered");
    }

    #[test]
    fn uncovered_orphan_writer_stays_uncovered() {
        let w = ws(&[(
            "crates/lsi-core/src/s.rs",
            "fn leak(p: &Path) {\n    let f = File::create(p);\n}\n",
        )]);
        let covered = w.graph.covered_by_sync();
        assert!(!covered[0]);
    }

    #[test]
    fn lock_sets_are_transitive() {
        let w = ws(&[(
            "crates/lsi-serve/src/e.rs",
            "impl E {\n    fn outer(&self) {\n        let g = self.moves.write().unwrap_or_else(|p| p.into_inner());\n        self.inner();\n    }\n    fn inner(&self) {\n        let h = self.state.read().unwrap_or_else(|p| p.into_inner());\n    }\n}\n",
        )]);
        let outer = w.node_id(0, 0).expect("outer indexed");
        assert!(w.graph.lock_names[outer].contains("moves"));
        assert!(
            w.graph.lock_names[outer].contains("state"),
            "callee's lock set flows into the caller"
        );
    }

    #[test]
    fn blind_method_unions_do_not_carry_lock_summaries() {
        // `h.fetch()` on an unknown receiver union-resolves to Store::fetch,
        // whose body locks — but that blind edge must not smear `state`
        // into the unrelated caller's lock set.
        let w = ws(&[
            (
                "crates/lsi-core/src/user.rs",
                "pub fn consume(h: &Handle) {\n    let v = h.fetch();\n}\n",
            ),
            (
                "crates/lsi-serve/src/store.rs",
                "impl Store {\n    pub fn fetch(&self) -> u32 {\n        let g = self.state.lock().unwrap_or_else(|p| p.into_inner());\n        *g\n    }\n}\n",
            ),
        ]);
        let consume = w.node_id(0, 0).expect("consume indexed");
        let store_read = w.node_id(1, 0).expect("Store::fetch indexed");
        assert!(w.graph.lock_names[store_read].contains("state"));
        assert!(
            w.graph.lock_names[consume].is_empty(),
            "blind method edge must not propagate lock names"
        );
        // The edge still exists for coverage facts — only lock summaries
        // are withheld.
        assert_eq!(w.graph.resolved[consume][0], vec![store_read]);
        assert!(!w.graph.lock_confident[consume][0]);
    }

    #[test]
    fn graph_is_deterministic() {
        let files = [
            (
                "crates/lsi-core/src/a.rs",
                "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
            ),
            ("crates/lsi-core/src/d.rs", "fn d() { a(); }\n"),
        ];
        let w1 = ws(&files);
        let w2 = ws(&files);
        assert_eq!(
            format!("{:?}", w1.graph.by_name),
            format!("{:?}", w2.graph.by_name)
        );
        assert_eq!(
            format!("{:?}", w1.graph.resolved),
            format!("{:?}", w2.graph.resolved)
        );
    }
}
