// Fixture: L1-lock-order-cycle must stay quiet when every path agrees on
// one global order — including paths where the second acquisition happens
// inside a helper (the interprocedural edge still points the same way).

/// A registry whose lock order is always `cells` before `moves`.
pub struct Registry {
    cells: RwLock<u64>,
    moves: Mutex<u64>,
}

impl Registry {
    /// Takes `cells`, then delegates the `moves` acquisition to a helper.
    pub fn promote(&self) {
        let cells = self.cells.write().unwrap_or_else(|p| p.into_inner());
        self.bump_moves();
        audit(&cells);
    }

    /// Owns the `moves` acquisition.
    fn bump_moves(&self) {
        let moves = self.moves.lock().unwrap_or_else(|p| p.into_inner());
        audit(&moves);
    }

    /// Same order inline: `cells` before `moves`.
    pub fn demote(&self) {
        let cells = self.cells.write().unwrap_or_else(|p| p.into_inner());
        let moves = self.moves.lock().unwrap_or_else(|p| p.into_inner());
        reconcile(&cells, &moves);
    }
}
