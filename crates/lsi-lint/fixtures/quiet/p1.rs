// Fixture: P1-raw-threads must stay quiet when work goes through the
// sanctioned parallel layer, and in test code.

pub fn fan_out(xs: &mut [f64]) {
    lsi_linalg::parallel::for_chunks_mut(xs, 64, |chunk, _| {
        for x in chunk.iter_mut() {
            *x *= 2.0;
        }
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn raw_threads_in_tests_are_fine() {
        let h = std::thread::spawn(|| 3);
        assert_eq!(h.join().unwrap(), 3);
    }
}
