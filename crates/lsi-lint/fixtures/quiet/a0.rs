// Fixture: well-formed allow directives suppress their rule on the target
// line only — trailing form and standalone form.

pub fn standalone_form() -> u32 {
    // lsi-lint: allow(D1-nondeterminism, "fixture demonstrating directives")
    std::process::id()
}

pub fn trailing_form() -> u32 {
    std::process::id() // lsi-lint: allow(D1, "short rule ids also match")
}
