// Fixture: D3-hasher-order must stay quiet when the same statement restores
// an order (BTree collect) or reduces order-insensitively, and on plain
// lookups.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn table_rows() -> Vec<String> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    counts.insert("term".to_string(), 3);
    let ordered: BTreeMap<String, usize> = counts.into_iter().collect();
    ordered.iter().map(|(k, v)| format!("{k}\t{v}")).collect()
}

pub fn total() -> usize {
    let mut counts: HashMap<String, usize> = HashMap::new();
    counts.insert("term".to_string(), 3);
    counts.values().sum()
}

pub fn biggest() -> Option<usize> {
    let mut set: HashSet<usize> = HashSet::new();
    set.insert(4);
    set.iter().copied().max()
}

pub fn lookup(key: &str) -> Option<usize> {
    let counts: HashMap<String, usize> = HashMap::new();
    counts.get(key).copied()
}
