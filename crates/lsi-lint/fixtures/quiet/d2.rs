// Fixture: D2-unseeded-rng must stay quiet when the seed or RNG is a
// parameter.

use rand::Rng;

pub fn sample_noise(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<f64>()).collect()
}

pub fn sample_with(rng: &mut impl Rng, n: usize) -> Vec<f64> {
    // Constructing a derived stream from a caller-held generator is fine:
    // the caller controls the seed.
    let mut derived = rand::rngs::StdRng::seed_from_u64(rng.gen());
    (0..n).map(|_| derived.gen::<f64>()).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn literal_seeds_in_tests_are_fine() {
        let _rng = rand::rngs::StdRng::seed_from_u64(7);
    }
}
