// Fixture: M1-arrival-order-merge must stay quiet on the sanctioned
// order-fixed shape — each reply lands in its shard-indexed slot, and the
// reduction walks the slots in index order, independent of arrival order.

use std::sync::mpsc::Receiver;

pub fn gather(rx: &Receiver<(usize, Vec<(usize, f64)>)>, shards: usize) -> Vec<(usize, f64)> {
    // Replies carry their shard index; arrival order only decides when a
    // slot fills, never where.
    let mut slots: Vec<Option<Vec<(usize, f64)>>> = vec![None; shards];
    for _ in 0..shards {
        if let Ok((shard, reply)) = rx.recv() {
            slots[shard] = Some(reply);
        }
    }
    // Order-fixed reduction: slot order, then a total sort.
    let mut merged = Vec::new();
    for slot in slots.into_iter().flatten() {
        merged.extend(slot);
    }
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    merged
}

pub fn enqueue(pending: &mut Vec<(usize, f64)>, item: (usize, f64)) {
    // Accumulation with no cross-thread arrival in sight is fine.
    pending.push(item);
}
