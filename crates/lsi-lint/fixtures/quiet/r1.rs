// Fixture: R1-reflector must stay quiet on norms used for plain magnitudes
// and on delegation to the sanctioned reflector.

pub fn residual_norm(x: &[f64]) -> f64 {
    norm(x)
}

pub fn reflect(x: &[f64]) -> (Vec<f64>, f64) {
    lsi_linalg::vector::householder_reflector(x)
}

fn norm(x: &[f64]) -> f64 {
    x.iter().map(|a| a * a).sum::<f64>().sqrt()
}
