// Fixture: T1-unbounded-socket-read must stay quiet when the read is
// deadline-bounded, when the socket is driven nonblocking, and on reads
// that involve no socket at all.

use std::io::Read;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Timeout armed before the read: a dead peer surfaces as `WouldBlock` /
/// `TimedOut`, never an unbounded stall.
pub fn read_reply_header(stream: &mut UnixStream, timeout: Duration) -> std::io::Result<usize> {
    stream.set_read_timeout(Some(timeout))?;
    let mut header = [0u8; 16];
    let n = stream.read(&mut header)?;
    Ok(n)
}

/// Nonblocking socket: the caller's poll loop owns the deadline.
pub fn poll_byte(stream: &mut UnixStream) -> std::io::Result<usize> {
    stream.set_nonblocking(true)?;
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(n) => Ok(n),
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(0),
        Err(e) => Err(e),
    }
}

/// No socket in sight: in-memory readers block on nobody.
pub fn read_tag(bytes: &mut &[u8]) -> std::io::Result<u8> {
    let mut tag = [0u8; 1];
    bytes.read(&mut tag).map(|_| tag[0])
}
