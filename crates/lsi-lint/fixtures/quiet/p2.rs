// Fixture: P2-thread-dependent-chunking must stay quiet on size-only chunk
// math and on thread counts that never touch chunk boundaries.

pub fn plan(len: usize) -> usize {
    // Boundary depends only on problem size: identical for every thread
    // count.
    let chunk_size = len.div_ceil(8).max(64);
    chunk_size
}

pub fn pool_size(num_threads: usize) -> usize {
    num_threads.max(1)
}
