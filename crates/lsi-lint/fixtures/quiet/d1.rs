// Fixture: D1-nondeterminism must stay quiet on test-region clocks, string
// mentions, and justified allows.

/// Library code that merely names the construct in a string.
pub fn describe() -> &'static str {
    "uses Instant::now() internally? no."
}

pub fn deadline_poll() -> bool {
    // lsi-lint: allow(D1-nondeterminism, "deadline clock, not experiment state")
    std::time::Instant::now().elapsed().as_nanos() > 0
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _t = std::time::Instant::now();
        let _p = std::process::id();
    }
}
