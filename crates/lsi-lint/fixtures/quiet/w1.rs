// Fixture: W1-apply-before-journal must stay quiet when the journal
// append (possibly delegated to a helper) precedes the in-memory apply,
// and on replay paths that apply already-durable records.

/// A durable index whose write path journals before applying.
pub struct DurableIndex {
    index: MemoryIndex,
    journal: Journal,
}

impl DurableIndex {
    /// Correct order, with the append delegated to a helper: the call
    /// graph recognizes `log_add` as the append event.
    pub fn add_document(&mut self, terms: &[u32]) -> Result<u64, StorageError> {
        self.log_add(terms)?;
        let id = self.index.add_document(terms);
        Ok(id)
    }

    /// Owns the append+fsync; callers inherit the append event.
    fn log_add(&mut self, terms: &[u32]) -> Result<(), StorageError> {
        self.journal.append(&MutationRecord::AddDocument {
            terms: terms.to_vec(),
        })
    }

    /// Replay applies without appending: the records being replayed are
    /// already durable, so this path is out of W1's scope.
    pub fn replay(&mut self, records: &[MutationRecord]) -> Result<(), StorageError> {
        for record in records {
            self.index.add_document(record.terms());
        }
        Ok(())
    }
}
