// Fixture: U1-unsafe must stay quiet on safe code that merely talks about
// unsafety in comments and strings.

/// Safe bit reinterpretation; no `unsafe` needed since Rust 1.20-era
/// `to_bits`/`from_bits`.
pub fn reinterpret(x: u64) -> f64 {
    f64::from_bits(x)
}

pub fn describe() -> &'static str {
    "this crate contains no unsafe code"
}
