// Fixture: K1-thread-dependent-blocking must stay quiet on size-only
// blocking geometry, even next to thread-pool plumbing elsewhere.

pub fn block_plan(m: usize, n: usize, k: usize) -> (usize, usize, usize) {
    // Geometry is a pure function of the problem dimensions.
    let mc = m.max(4).min(64);
    let kc = k.max(1).min(256);
    let nc = n.max(8).min(4096);
    (mc, kc, nc)
}

pub fn pool_size(num_threads: usize) -> usize {
    // The thread count sizes the pool, never the panels.
    num_threads.max(1)
}
