// Fixture: E1-panic-policy must stay quiet when the enclosing fn documents
// its panics, and in test code.

/// Reads the first value.
///
/// # Panics
/// Panics if `xs` is empty; callers guarantee non-empty input.
pub fn read_value(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

/// Fallible variant, no panic at all.
pub fn try_read_value(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let xs = [1.0];
        assert_eq!(*xs.first().unwrap(), 1.0);
    }
}
