// Fixture: S2-unchecked-length-alloc must stay quiet when decoded lengths
// are bounded before allocation, in fns that decode nothing, and under a
// justified allow.

/// Declared section counts may never exceed this.
pub const MAX_RECORDS: u64 = 1 << 12;

/// Cap against a named constant before allocating.
pub fn read_capped(bytes: &[u8]) -> Option<Vec<u64>> {
    let mut n = [0u8; 8];
    n.copy_from_slice(bytes.get(..8)?);
    let count = u64::from_le_bytes(n);
    if count > MAX_RECORDS {
        return None;
    }
    let mut out = Vec::with_capacity(count as usize);
    for chunk in bytes[8..].chunks_exact(8) {
        let mut v = [0u8; 8];
        v.copy_from_slice(chunk);
        out.push(u64::from_le_bytes(v));
    }
    Some(out)
}

/// Clamp against the remaining input on the allocation line itself.
pub fn read_clamped(bytes: &[u8]) -> Option<Vec<u8>> {
    let mut len = [0u8; 4];
    len.copy_from_slice(bytes.get(..4)?);
    let declared = u32::from_le_bytes(len) as usize;
    let mut out = Vec::with_capacity(declared.min(bytes.len() - 4));
    out.extend_from_slice(bytes.get(4..4 + declared)?);
    Some(out)
}

/// Overflow-checked size arithmetic rejects absurd declared shapes.
pub fn read_matrix(bytes: &[u8], rows: usize, cols: usize) -> Option<Vec<u8>> {
    let mut tag = [0u8; 4];
    tag.copy_from_slice(bytes.get(..4)?);
    let _version = u32::from_le_bytes(tag);
    let total = rows.checked_mul(cols)?;
    let mut out = vec![0u8; total];
    out.copy_from_slice(bytes.get(4..4 + total)?);
    Some(out)
}

/// No decoding at all: allocating from a caller-supplied size is the
/// caller's contract, not a corruption surface.
pub fn zeros(n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    out.resize(n, 0.0);
    out
}

/// A justified exception keeps the escape hatch honest.
pub fn read_trusted(bytes: &[u8]) -> Vec<u8> {
    let mut len = [0u8; 4];
    len.copy_from_slice(&bytes[..4]);
    let n = u32::from_le_bytes(len) as usize;
    // lsi-lint: allow(S2-unchecked-length-alloc, "length was validated by the caller's header check")
    let mut out = vec![0u8; n];
    out.copy_from_slice(&bytes[4..4 + n]);
    out
}
