// Fixture: S1-unsynced-write must stay quiet when create/rename paths
// reach sync_all/sync_parent_dir, in fns that touch no files, and in test
// code that stages disk states on purpose.

use std::io::Write;
use std::path::Path;

/// Syncs the parent directory of `path`; no-op where directories cannot
/// be opened.
pub fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = path.parent().unwrap_or(Path::new("."));
    match std::fs::File::open(parent) {
        Ok(dir) => dir.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Durable save: create + write + fsync, rename, then directory sync.
pub fn save_durable(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Writes without syncing itself: every caller owns the fsync, and the
/// interprocedural caller-coverage analysis proves they all do.
fn stage_write(path: &Path, bytes: &[u8]) -> std::io::Result<std::fs::File> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    Ok(f)
}

/// Caller that durably commits the staged write.
pub fn commit(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let f = stage_write(path, bytes)?;
    f.sync_all()?;
    sync_parent_dir(path)
}

/// No file writes at all: nothing to sync.
pub fn checksum(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0u64, |acc, b| {
        acc.wrapping_mul(31).wrapping_add(u64::from(*b))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_stage_unsynced_files() {
        let dir = std::env::temp_dir().join("s1_quiet_fixture");
        std::fs::create_dir_all(&dir).ok();
        let staged = dir.join("torn.bin");
        let mut f = std::fs::File::create(&staged).expect("create staged file");
        f.write_all(b"torn").expect("write staged bytes");
        std::fs::rename(&staged, dir.join("renamed.bin")).expect("stage rename");
        std::fs::remove_dir_all(&dir).ok();
    }
}
