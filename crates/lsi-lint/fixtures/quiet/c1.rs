// Fixture: C1-unpolled-hot-loop must stay quiet when the loop polls the
// token — directly, or through a helper the call graph resolves.

/// Polls inline every 1024 items.
pub fn drain(token: &CancelToken, items: &[u64]) -> Result<u64, Cancelled> {
    let mut acc = 0u64;
    for (i, item) in items.iter().enumerate() {
        if i % 1024 == 0 && token.is_cancelled() {
            return Err(Cancelled);
        }
        acc = acc.wrapping_add(*item);
    }
    Ok(acc)
}

/// Delegates the poll to a helper; the summary carries the poll fact up.
pub fn drain_checked(token: &CancelToken, items: &[u64]) -> Result<u64, Cancelled> {
    let mut acc = 0u64;
    for item in items {
        poll(token)?;
        acc = acc.wrapping_add(*item);
    }
    Ok(acc)
}

/// Owns the poll; loop-free, so C1 does not apply to it.
fn poll(token: &CancelToken) -> Result<(), Cancelled> {
    if token.is_cancelled() {
        return Err(Cancelled);
    }
    Ok(())
}
