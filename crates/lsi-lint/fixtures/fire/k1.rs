// Fixture: K1-thread-dependent-blocking must flag blocking geometry chosen
// from runtime parallelism.

pub fn panel_heights(m: usize, num_threads: usize) -> usize {
    let mc = (m + num_threads).max(8);
    mc
}

pub fn panel_depth(k: usize) -> usize {
    let kc = k.min(std::thread::available_parallelism().map_or(1, |n| n.get()) * 64);
    kc
}
