// Fixture: U1-unsafe must fire on any unsafe outside the allowlist, tests
// included.

pub fn reinterpret(x: u64) -> f64 {
    unsafe { std::mem::transmute(x) }
}
