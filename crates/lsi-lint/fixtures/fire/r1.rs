// Fixture: R1-reflector must flag naive norm()-based Householder
// construction outside the sanctioned implementation.

pub fn naive_reflector(x: &[f64]) -> Vec<f64> {
    let alpha = -x[0].signum() * norm(x);
    let mut v = x.to_vec();
    v[0] -= alpha;
    v
}

fn norm(x: &[f64]) -> f64 {
    x.iter().map(|a| a * a).sum::<f64>().sqrt()
}
