// Fixture: D2-unseeded-rng must fire when a fn constructs an RNG without a
// seed or Rng parameter, and always on entropy-based construction.

pub fn sample_noise(n: usize) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    (0..n).map(|_| rng.gen::<f64>()).collect()
}

pub fn entropy_soup(seed: u64) -> f64 {
    let _ = seed;
    let mut rng = rand::rngs::StdRng::from_entropy();
    rng.gen()
}
