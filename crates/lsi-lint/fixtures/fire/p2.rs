// Fixture: P2-thread-dependent-chunking must flag chunk boundaries computed
// from the thread count.

pub fn plan(len: usize, num_threads: usize) -> usize {
    let chunk_size = len.div_ceil(num_threads);
    chunk_size
}

pub fn grain(total: usize, n_threads: usize) -> usize {
    let per_thread = total / n_threads;
    per_thread
}
