// Fixture: D1-nondeterminism must fire on wall-clock and process-id reads
// in library code.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn pid_salt() -> u32 {
    std::process::id()
}
