// Fixture: D3-hasher-order must fire on unordered hash iteration feeding a
// Vec output — receiver-on-previous-line chains, for loops, and params
// declared on their own signature line.

use std::collections::{HashMap, HashSet};

pub fn table_rows() -> Vec<String> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    counts.insert("term".to_string(), 3);
    let rows: Vec<String> = counts
        .iter()
        .map(|(k, v)| format!("{k}\t{v}"))
        .collect();
    rows
}

pub fn accumulate(out: &mut [f64]) {
    let mut weights: HashMap<usize, f64> = HashMap::new();
    weights.insert(0, 1.5);
    for (i, w) in &weights {
        out[*i] += w;
    }
}

pub fn ids(
    set: HashSet<usize>,
) -> Vec<usize> {
    let flat: Vec<usize> = set.into_iter().collect();
    flat
}
