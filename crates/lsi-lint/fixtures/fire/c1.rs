// Fixture: C1-unpolled-hot-loop must fire on a fn that accepts a
// CancelToken, loops over its input, and never polls the token — the
// cancellation request can never land.

/// Sums the batch but ignores the token entirely.
pub fn drain(token: &CancelToken, items: &[u64]) -> u64 {
    let mut acc = 0u64;
    for item in items {
        acc = acc.wrapping_add(*item);
    }
    acc
}
