// Fixture: S1-unsynced-write must fire on fns that create or rename files
// without ever reaching sync_all/sync_parent_dir.

use std::io::Write;
use std::path::Path;

/// Writes bytes with no fsync: lost on crash even after returning Ok.
pub fn save_unsynced(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    Ok(())
}

/// Renames into place without syncing the parent directory: the rename
/// itself can be rolled back by a crash.
pub fn publish_unsynced(tmp: &Path, dest: &Path) -> std::io::Result<()> {
    std::fs::rename(tmp, dest)?;
    Ok(())
}
