// Fixture: L1-lock-order-cycle must fire on two paths that take the same
// pair of locks in opposite orders (ABBA deadlock).

/// A registry with two locks and no agreed acquisition order.
pub struct Registry {
    cells: RwLock<u64>,
    moves: Mutex<u64>,
}

impl Registry {
    /// Takes `cells` then `moves`.
    pub fn promote(&self) {
        let cells = self.cells.write().unwrap_or_else(|p| p.into_inner());
        let moves = self.moves.lock().unwrap_or_else(|p| p.into_inner());
        reconcile(&cells, &moves);
    }

    /// Takes `moves` then `cells` — the opposite order.
    pub fn demote(&self) {
        let moves = self.moves.lock().unwrap_or_else(|p| p.into_inner());
        let cells = self.cells.write().unwrap_or_else(|p| p.into_inner());
        reconcile(&cells, &moves);
    }
}
