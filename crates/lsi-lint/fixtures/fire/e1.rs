// Fixture: E1-panic-policy must fire on panicking calls inside library fns
// that lack a `# Panics` doc section.

/// Reads a value, swallowing the error path.
pub fn read_value(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

/// Parses a header.
pub fn parse_header(line: &str) -> usize {
    line.split('\t').next().expect("header").len()
}

/// Dispatches on a tag.
pub fn dispatch(tag: u8) -> &'static str {
    match tag {
        0 => "dense",
        1 => "sparse",
        _ => unreachable!("tag space is two bits"),
    }
}
