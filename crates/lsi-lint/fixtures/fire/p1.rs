// Fixture: P1-raw-threads must fire on direct thread creation outside the
// sanctioned parallel layer.

pub fn fan_out(n: usize) -> Vec<std::thread::JoinHandle<usize>> {
    (0..n).map(|i| std::thread::spawn(move || i * i)).collect()
}

pub fn scoped_sum(xs: &[u64]) -> u64 {
    let mut total = 0;
    std::thread::scope(|s| {
        s.spawn(|| {
            total = xs.iter().sum();
        });
    });
    total
}
