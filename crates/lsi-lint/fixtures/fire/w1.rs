// Fixture: W1-apply-before-journal must fire when a durable mutation path
// applies the in-memory change before the journal append+fsync — a crash
// between the two leaves memory ahead of the durable log.

/// A durable index whose write path journals in the wrong order.
pub struct DurableIndex {
    index: MemoryIndex,
    journal: Journal,
}

impl DurableIndex {
    /// Applies first, journals second: the classic torn-mutation bug.
    pub fn add_document(&mut self, terms: &[u32]) -> Result<u64, StorageError> {
        let id = self.index.add_document(terms);
        self.journal.append(&MutationRecord::AddDocument {
            terms: terms.to_vec(),
        })?;
        Ok(id)
    }
}
