// Fixture: malformed allow directives must produce deny-level
// A0-allow-syntax findings instead of silently suppressing nothing.

pub fn missing_reason() -> u32 {
    // lsi-lint: allow(D1-nondeterminism)
    std::process::id()
}

pub fn empty_reason() -> u32 {
    // lsi-lint: allow(D1-nondeterminism, "")
    std::process::id()
}

pub fn unknown_verb() -> u32 {
    // lsi-lint: suppress(D1-nondeterminism, "wrong verb")
    std::process::id()
}
