// Fixture: S2-unchecked-length-alloc must fire on readers that feed a
// decoded length straight into an allocation.

/// Reads a length prefix and allocates whatever it says: four corrupt
/// bytes become a multi-gigabyte reservation.
pub fn read_records(bytes: &[u8]) -> Vec<u64> {
    let mut n = [0u8; 8];
    n.copy_from_slice(&bytes[..8]);
    let count = u64::from_le_bytes(n) as usize;
    let mut out = Vec::with_capacity(count);
    for chunk in bytes[8..].chunks_exact(8) {
        let mut v = [0u8; 8];
        v.copy_from_slice(chunk);
        out.push(u64::from_le_bytes(v));
    }
    out
}

/// Same failure through the `vec![0; n]` spelling and `read_exact`.
pub fn read_payload(r: &mut impl std::io::Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}
