// Fixture: M1-arrival-order-merge must flag replies folded into a merged
// result set in whatever order they arrive — the merge depends on
// scheduling, so the answer is not reply-order-invariant.

use std::sync::mpsc::Receiver;

pub fn gather(rx: &Receiver<Vec<(usize, f64)>>, shards: usize) -> Vec<(usize, f64)> {
    let mut merged = Vec::new();
    for _ in 0..shards {
        merged.extend(rx.recv().unwrap_or_default());
    }
    merged
}

pub fn collect(handles: Vec<std::thread::JoinHandle<(usize, f64)>>) -> Vec<(usize, f64)> {
    let mut hits = Vec::new();
    for handle in handles {
        hits.push(handle.join().unwrap_or((0, 0.0)));
    }
    hits
}
