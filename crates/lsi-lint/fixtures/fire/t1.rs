// Fixture: T1-unbounded-socket-read must fire on socket reads with no
// deadline — a silent peer (or a SIGKILLed daemon) stalls the caller
// forever.

use std::io::Read;
use std::os::unix::net::UnixStream;

/// Reads a reply header, blocking for as long as the peer stays quiet.
pub fn read_reply_header(stream: &mut UnixStream) -> std::io::Result<usize> {
    let mut header = [0u8; 16];
    let n = stream.read(&mut header)?;
    Ok(n)
}

/// Drains a child's stdout with no bound on how long the child may stall.
pub fn drain_child(pipe: &mut std::process::ChildStdout, out: &mut String) -> std::io::Result<usize> {
    pipe.read_to_string(out)
}
