//! Per-rule fixture tests: every rule must fire on its seeded-violation
//! fixture (`fixtures/fire/<rule>.rs`) and stay quiet on its near-miss
//! fixture (`fixtures/quiet/<rule>.rs`).

use lsi_lint::{lint_source, Severity};
use std::path::PathBuf;

/// (short name, full rule id) for every shipped rule.
const RULES: &[(&str, &str)] = &[
    ("c1", "C1-unpolled-hot-loop"),
    ("d1", "D1-nondeterminism"),
    ("d2", "D2-unseeded-rng"),
    ("d3", "D3-hasher-order"),
    ("e1", "E1-panic-policy"),
    ("k1", "K1-thread-dependent-blocking"),
    ("l1", "L1-lock-order-cycle"),
    ("m1", "M1-arrival-order-merge"),
    ("p1", "P1-raw-threads"),
    ("p2", "P2-thread-dependent-chunking"),
    ("r1", "R1-reflector"),
    ("s1", "S1-unsynced-write"),
    ("s2", "S2-unchecked-length-alloc"),
    ("t1", "T1-unbounded-socket-read"),
    ("u1", "U1-unsafe"),
    ("w1", "W1-apply-before-journal"),
];

/// Lints `fixtures/<kind>/<name>.rs` under its real workspace-relative path
/// (which classifies as library source, so every rule applies).
fn lint_fixture(kind: &str, name: &str) -> Vec<lsi_lint::Finding> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
        .join(format!("{name}.rs"));
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let rel = format!("crates/lsi-lint/fixtures/{kind}/{name}.rs");
    lint_source(&rel, &src)
}

#[test]
fn every_rule_fires_on_its_fire_fixture() {
    for (name, rule) in RULES {
        let findings = lint_fixture("fire", name);
        let hits = findings.iter().filter(|f| f.rule == *rule).count();
        assert!(
            hits >= 1,
            "rule {rule} produced no findings on fixtures/fire/{name}.rs; got: {findings:#?}"
        );
    }
}

#[test]
fn every_rule_is_quiet_on_its_quiet_fixture() {
    for (name, rule) in RULES {
        let findings = lint_fixture("quiet", name);
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == *rule).collect();
        assert!(
            hits.is_empty(),
            "rule {rule} fired on fixtures/quiet/{name}.rs: {hits:#?}"
        );
    }
}

#[test]
fn quiet_tree_is_fully_clean() {
    // The quiet fixtures are also cross-checked against every *other* rule:
    // a near-miss for one rule must not trip a different one.
    for (name, _) in RULES {
        let findings = lint_fixture("quiet", name);
        assert!(
            findings.is_empty(),
            "fixtures/quiet/{name}.rs is not clean: {findings:#?}"
        );
    }
    assert!(lint_fixture("quiet", "a0").is_empty());
}

#[test]
fn fire_fixtures_carry_deny_findings() {
    // The seeded-violation tree must make the binary exit nonzero, which
    // requires at least one deny-severity finding among the fire fixtures.
    let mut deny = 0usize;
    for (name, _) in RULES {
        deny += lint_fixture("fire", name)
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count();
    }
    assert!(deny > 0, "fire fixtures produced no deny findings");
}

#[test]
fn warn_rules_have_warn_severity() {
    for (name, rule) in [
        ("c1", "C1-unpolled-hot-loop"),
        ("k1", "K1-thread-dependent-blocking"),
        ("l1", "L1-lock-order-cycle"),
        ("m1", "M1-arrival-order-merge"),
        ("p2", "P2-thread-dependent-chunking"),
        ("r1", "R1-reflector"),
        ("s2", "S2-unchecked-length-alloc"),
        ("t1", "T1-unbounded-socket-read"),
    ] {
        let findings = lint_fixture("fire", name);
        let hit = findings
            .iter()
            .find(|f| f.rule == rule)
            .unwrap_or_else(|| panic!("{rule} missing from fire fixture"));
        assert_eq!(hit.severity, Severity::Warn, "{rule} must be warn-level");
    }
}

#[test]
fn malformed_allow_directives_fire_a0() {
    let findings = lint_fixture("fire", "a0");
    let a0: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "A0-allow-syntax")
        .collect();
    assert_eq!(
        a0.len(),
        3,
        "expected one A0 per malformed directive (missing reason, empty reason, wrong verb): {findings:#?}"
    );
    assert!(a0.iter().all(|f| f.severity == Severity::Deny));
    // Malformed directives must not suppress the underlying findings.
    assert!(
        findings.iter().any(|f| f.rule == "D1-nondeterminism"),
        "a malformed allow suppressed a D1 finding: {findings:#?}"
    );
}

#[test]
fn wellformed_allow_directives_suppress() {
    // quiet/a0.rs reads `process::id()` twice, suppressed by a standalone
    // directive (full rule id) and a trailing directive (short id).
    let findings = lint_fixture("quiet", "a0");
    assert!(
        findings.is_empty(),
        "well-formed allows failed to suppress: {findings:#?}"
    );
}

#[test]
fn every_registered_rule_has_fixture_coverage() {
    // Meta-test derived from the registries themselves, so adding a rule
    // without fixtures fails here rather than silently shipping untested.
    let mut ids: Vec<String> = lsi_lint::rules::registry()
        .iter()
        .map(|r| r.id().to_string())
        .collect();
    ids.extend(
        lsi_lint::rules::workspace_registry()
            .iter()
            .map(|r| r.id().to_string()),
    );
    assert!(!ids.is_empty());
    for id in &ids {
        let short = id
            .split('-')
            .next()
            .expect("rule ids start with a short code")
            .to_ascii_lowercase();
        for kind in ["fire", "quiet"] {
            let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("fixtures")
                .join(kind)
                .join(format!("{short}.rs"));
            assert!(
                path.is_file(),
                "rule {id} has no {kind} fixture at {}",
                path.display()
            );
        }
        let findings = lint_fixture("fire", &short);
        assert!(
            findings.iter().any(|f| f.rule == *id),
            "rule {id} does not fire on its fire fixture: {findings:#?}"
        );
        // Exactness: a fire fixture seeds one violation class; collateral
        // findings from other rules would make the fixture ambiguous.
        let others: Vec<_> = findings.iter().filter(|f| f.rule != *id).collect();
        assert!(
            others.is_empty(),
            "fixtures/fire/{short}.rs trips rules other than {id}: {others:#?}"
        );
        let quiet_hits: Vec<_> = lint_fixture("quiet", &short)
            .into_iter()
            .filter(|f| f.rule == *id)
            .collect();
        assert!(
            quiet_hits.is_empty(),
            "rule {id} fired on its quiet fixture: {quiet_hits:#?}"
        );
    }
}

#[test]
fn findings_report_real_lines() {
    // Spot-check diagnostics point at the violating line, not the fn header.
    let findings = lint_fixture("fire", "d1");
    let f = findings
        .iter()
        .find(|f| f.rule == "D1-nondeterminism")
        .expect("d1 fires");
    assert!(
        f.snippet.contains("::now()") || f.snippet.contains("process::id()"),
        "snippet should show the ambient read: {f:#?}"
    );
    assert!(f.line > 1);
}
