//! Lexer edge-case regressions: raw strings with hash fences, nested and
//! multi-line block comments, lifetimes vs char literals, and raw
//! identifiers. Each case once produced a wrong sanitized stream or a wrong
//! comment attribution; these tests pin the corrected behavior.

use lsi_lint::context::FileContext;
use lsi_lint::lexer::lex;
use lsi_lint::lint_source;

#[test]
fn raw_string_hash_fences_hide_their_contents() {
    let src = r####"let re = r#"thread::spawn "quoted" Instant::now()"#;
let deep = r###"ends with "## not before"###;
let tail = 7;
"####;
    let l = lex(src);
    assert!(!l.sanitized.contains("thread::spawn"));
    assert!(!l.sanitized.contains("Instant::now"));
    assert!(!l.sanitized.contains("ends with"));
    assert!(l.sanitized.contains("let tail = 7;"));
    // The rule pass agrees: nothing inside the fences fires.
    assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn raw_byte_strings_are_blanked_too() {
    let src = "let b = br#\"unsafe { process::id() }\"#;\nlet n = 1;\n";
    let l = lex(src);
    assert!(!l.sanitized.contains("unsafe"));
    assert!(!l.sanitized.contains("process::id"));
    assert!(l.sanitized.contains("let n = 1;"));
}

#[test]
fn nested_block_comments_close_at_matching_depth() {
    let src = "/* outer /* inner */ still outer */ let a = 1;\n";
    let l = lex(src);
    assert!(!l.sanitized.contains("outer"));
    assert!(!l.sanitized.contains("inner"));
    assert!(l.sanitized.contains("let a = 1;"));
    assert_eq!(l.comments.len(), 1);
}

#[test]
fn multiline_block_comment_resets_trailing_detection() {
    // Code on line 1, then a block comment spanning to line 3. A `//`
    // comment on the close line is standalone — nothing before it on line 3
    // is code — and must not inherit line 1's "has code" state.
    let src = "let a = 1; /* spans\nlines\n*/ // standalone\nlet b = 2;\n";
    let l = lex(src);
    assert_eq!(l.comments.len(), 2);
    assert!(
        l.comments[0].has_code_before,
        "block comment trails `let a`"
    );
    assert!(
        !l.comments[1].has_code_before,
        "comment on the block's close line must be standalone"
    );
}

#[test]
fn standalone_allow_after_multiline_block_applies_to_next_line() {
    // The practical consequence of trailing-detection: a directive on the
    // close line of a multi-line block comment must suppress the NEXT line.
    let src = "/* design\nnote\n*/ // lsi-lint: allow(D1-nondeterminism, \"deadline math\")\nlet t = Instant::now();\n";
    let findings = lint_source("crates/x/src/lib.rs", src);
    assert!(
        findings.is_empty(),
        "standalone allow after a multi-line block must suppress: {findings:#?}"
    );
}

#[test]
fn lifetimes_survive_char_literals_are_blanked() {
    let src = "fn f<'a>(x: &'a str) -> char {\n    let c = 'x';\n    let nl = '\\n';\n    let u = '\\u{1F600}';\n    let tick = '\\'';\n    c\n}\n";
    let l = lex(src);
    assert!(
        l.sanitized.contains("fn f<'a>(x: &'a str)"),
        "lifetimes are code"
    );
    assert!(!l.sanitized.contains("'x'"), "char contents are blanked");
    assert!(!l.sanitized.contains("1F600"));
    let ctx = FileContext::build("crates/x/src/lib.rs", src);
    assert_eq!(ctx.fns.len(), 1, "fn detection survives the literals");
}

#[test]
fn static_lifetime_is_not_a_char_literal() {
    let src = "static S: &'static str = \"x\";\nfn g(v: &'static [u8]) -> usize { v.len() }\n";
    let l = lex(src);
    assert!(l.sanitized.contains("&'static str"));
    assert!(l.sanitized.contains("&'static [u8]"));
}

#[test]
fn raw_identifiers_leave_no_phantom_keywords() {
    // `r#fn` / `r#loop` are identifiers, not keywords; the sanitized stream
    // must not present them as `fn` / `loop` tokens.
    let src = "pub fn real(r#fn: u32, r#loop: u32) -> u32 {\n    r#fn + r#loop\n}\n";
    let l = lex(src);
    assert!(
        l.sanitized.contains("__fn"),
        "r#fn fuses into one identifier"
    );
    assert!(!l.sanitized.contains("r#fn"));
    let ctx = FileContext::build("crates/x/src/lib.rs", src);
    assert_eq!(ctx.fns.len(), 1, "only `real` is a fn item");
    assert_eq!(ctx.fns[0].name, "real");
}

#[test]
fn raw_string_prefix_is_not_a_raw_identifier() {
    // `r#"…"#` must still lex as a raw string, not as `r#` + junk.
    let src = "let s = r#\"fn phantom() {}\"#;\n";
    let l = lex(src);
    assert!(!l.sanitized.contains("phantom"));
    let ctx = FileContext::build("crates/x/src/lib.rs", src);
    assert!(
        ctx.fns.is_empty(),
        "string contents must not produce fn spans"
    );
}

#[test]
fn ident_tail_r_is_not_a_raw_string_or_raw_ident() {
    // The `r` in `attr#` / `var#` tails must not trigger either raw form.
    let src = "let var = 1;\nlet forr = var + 1;\n";
    let l = lex(src);
    assert!(l.sanitized.contains("let forr = var + 1;"));
}
