//! Self-check: the real workspace must lint clean at deny level. This is the
//! same pass `scripts/check.sh` gates on; keeping it in the test suite means
//! `cargo test --workspace` alone catches a conformance regression.

use lsi_lint::{discover_workspace_files, find_workspace_root, lint_file, Severity};
use std::path::Path;

#[test]
fn workspace_has_zero_deny_findings() {
    let start = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(start).expect("workspace root above crates/lsi-lint");
    let files = discover_workspace_files(&root);
    assert!(
        files.len() > 40,
        "workspace discovery looks broken: only {} .rs files under {}",
        files.len(),
        root.display()
    );
    let mut deny = Vec::new();
    for f in &files {
        for finding in lint_file(&root, f).expect("workspace file readable") {
            if finding.severity == Severity::Deny {
                deny.push(format!(
                    "{}:{} {} {}",
                    finding.path, finding.line, finding.rule, finding.message
                ));
            }
        }
    }
    assert!(
        deny.is_empty(),
        "workspace must be deny-clean; found {} violations:\n{}",
        deny.len(),
        deny.join("\n")
    );
}

#[test]
fn discovery_skips_fixture_and_vendor_trees() {
    let start = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(start).expect("workspace root above crates/lsi-lint");
    let files = discover_workspace_files(&root);
    for f in &files {
        let rel = f
            .strip_prefix(&root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        assert!(
            !rel.contains("fixtures/")
                && !rel.starts_with("vendor/")
                && !rel.starts_with("target/"),
            "discovery leaked an excluded path: {rel}"
        );
    }
}

#[test]
fn seeded_violation_tree_fails_the_gate() {
    // The acceptance check behind `lsi-lint crates/lsi-lint/fixtures/fire`:
    // explicitly-passed paths do include fixtures, and the seeded tree must
    // produce deny findings (binary exit code 1).
    let fire = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("fire");
    let root = find_workspace_root(&fire).expect("workspace root");
    let files = lsi_lint::collect_files(&fire);
    assert!(files.len() >= 8, "expected one fire fixture per rule");
    let deny = files
        .iter()
        .flat_map(|f| lint_file(&root, f).expect("fixture readable"))
        .filter(|f| f.severity == Severity::Deny)
        .count();
    assert!(deny > 0, "fire tree must carry deny findings");
}
