//! Self-check: the real workspace must lint clean at deny level. This is the
//! same pass `scripts/check.sh` gates on; keeping it in the test suite means
//! `cargo test --workspace` alone catches a conformance regression.

use lsi_lint::{
    count_allows, discover_workspace_files, find_workspace_root, lint_file, lint_files, Severity,
};
use std::path::Path;

/// The inline-allow budget `scripts/check.sh` enforces via `--allow-budget`.
/// Raising it is a reviewed decision, not a drive-by.
const ALLOW_BUDGET: usize = 30;

#[test]
fn workspace_has_zero_deny_findings() {
    let start = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(start).expect("workspace root above crates/lsi-lint");
    let files = discover_workspace_files(&root);
    assert!(
        files.len() > 40,
        "workspace discovery looks broken: only {} .rs files under {}",
        files.len(),
        root.display()
    );
    // One workspace-level pass, so the interprocedural rules see the full
    // call graph — exactly what the binary and check.sh run.
    let findings = lint_files(&root, &files).expect("workspace files readable");
    let deny: Vec<String> = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .map(|f| format!("{}:{} {} {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(
        deny.is_empty(),
        "workspace must be deny-clean; found {} violations:\n{}",
        deny.len(),
        deny.join("\n")
    );
    // The interprocedural rules must also stay warn-quiet on the real tree:
    // a standing warning would train everyone to ignore the rule.
    let ip: Vec<String> = findings
        .iter()
        .filter(|f| {
            matches!(
                f.rule,
                "S1-unsynced-write"
                    | "W1-apply-before-journal"
                    | "L1-lock-order-cycle"
                    | "C1-unpolled-hot-loop"
            )
        })
        .map(|f| format!("{}:{} {} {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(
        ip.is_empty(),
        "interprocedural rules must stay quiet on the real tree:\n{}",
        ip.join("\n")
    );
}

#[test]
fn workspace_stays_inside_allow_budget() {
    let start = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(start).expect("workspace root above crates/lsi-lint");
    let files = discover_workspace_files(&root);
    let allows = count_allows(&root, &files).expect("workspace files readable");
    assert!(
        allows <= ALLOW_BUDGET,
        "workspace carries {allows} inline `lsi-lint: allow` directives, budget is \
         {ALLOW_BUDGET}; fix the finding or re-justify an existing allow instead of \
         adding one"
    );
}

#[test]
fn discovery_skips_fixture_and_vendor_trees() {
    let start = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(start).expect("workspace root above crates/lsi-lint");
    let files = discover_workspace_files(&root);
    for f in &files {
        let rel = f
            .strip_prefix(&root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        assert!(
            !rel.contains("fixtures/")
                && !rel.starts_with("vendor/")
                && !rel.starts_with("target/"),
            "discovery leaked an excluded path: {rel}"
        );
    }
}

#[test]
fn seeded_violation_tree_fails_the_gate() {
    // The acceptance check behind `lsi-lint crates/lsi-lint/fixtures/fire`:
    // explicitly-passed paths do include fixtures, and the seeded tree must
    // produce deny findings (binary exit code 1).
    let fire = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("fire");
    let root = find_workspace_root(&fire).expect("workspace root");
    let files = lsi_lint::collect_files(&fire);
    assert!(files.len() >= 8, "expected one fire fixture per rule");
    let deny = files
        .iter()
        .flat_map(|f| lint_file(&root, f).expect("fixture readable"))
        .filter(|f| f.severity == Severity::Deny)
        .count();
    assert!(deny > 0, "fire tree must carry deny findings");
}

#[test]
fn reports_are_byte_deterministic() {
    // Two full workspace passes must render byte-identical JSON and SARIF —
    // the property CI diffing and report caching rely on.
    let start = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(start).expect("workspace root above crates/lsi-lint");
    let files = discover_workspace_files(&root);
    let a = lint_files(&root, &files).expect("workspace files readable");
    let b = lint_files(&root, &files).expect("workspace files readable");
    assert_eq!(lsi_lint::render_json(&a), lsi_lint::render_json(&b));
    assert_eq!(lsi_lint::render_sarif(&a), lsi_lint::render_sarif(&b));
}
