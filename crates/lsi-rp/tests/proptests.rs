//! Property-based tests for random projection.

use proptest::prelude::*;

use lsi_linalg::rng::{gaussian_matrix, seeded};
use lsi_linalg::{vector, CsrMatrix};
use lsi_rp::{fkv_low_rank, two_step_lsi, ProjectionKind, RandomProjection};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Projections are linear maps: P(ax + by) = aPx + bPy.
    #[test]
    fn projection_is_linear(
        n in 4usize..40,
        seed in proptest::num::u64::ANY,
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let l = (n / 2).max(1);
        for kind in ProjectionKind::ALL {
            let p = RandomProjection::new(kind, n, l, seed).expect("l <= n");
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
            let combo: Vec<f64> = x.iter().zip(&y).map(|(u, v)| a * u + b * v).collect();
            let px = p.project_vector(&x).expect("length n");
            let py = p.project_vector(&y).expect("length n");
            let pc = p.project_vector(&combo).expect("length n");
            for i in 0..l {
                prop_assert!((pc[i] - a * px[i] - b * py[i]).abs() < 1e-9, "{}", kind.name());
            }
        }
    }

    /// Orthonormal-subspace projection at full dimension is an isometry.
    #[test]
    fn full_dimension_projection_preserves_norms(
        n in 3usize..25,
        seed in proptest::num::u64::ANY,
    ) {
        let p = RandomProjection::new(ProjectionKind::OrthonormalSubspace, n, n, seed)
            .expect("l == n allowed");
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).ln()).collect();
        let px = p.project_vector(&x).expect("length n");
        // Scaling √(n/l) = 1 at l = n; an orthogonal map preserves norms.
        prop_assert!((vector::norm(&px) - vector::norm(&x)).abs() < 1e-9);
    }

    /// The two-step error never exceeds the total mass and never goes
    /// negative, for any ensemble and seed.
    #[test]
    fn two_step_error_in_range(
        seed in proptest::num::u64::ANY,
        kind_idx in 0usize..4,
    ) {
        let mut rng = seeded(seed ^ 0x777);
        let mut dense = gaussian_matrix(&mut rng, 30, 20);
        dense.map_inplace(|x| if x.abs() > 0.8 { x } else { 0.0 });
        let a = CsrMatrix::from_dense(&dense, 0.0);
        let kind = ProjectionKind::ALL[kind_idx];
        let r = two_step_lsi(&a, 3, 12, kind, seed).expect("valid dims");
        prop_assert!(r.error_sq >= 0.0);
        prop_assert!(r.error_sq <= r.total_sq + 1e-9);
        prop_assert!((r.total_sq - a.frobenius_sq()).abs() < 1e-9);
    }

    /// FKV error is bounded by the total mass and never beats the optimum.
    #[test]
    fn fkv_error_in_range(seed in proptest::num::u64::ANY, s in 3usize..20) {
        let mut rng = seeded(seed ^ 0x999);
        let mut dense = gaussian_matrix(&mut rng, 25, 18);
        dense.map_inplace(|x| if x.abs() > 0.8 { x } else { 0.0 });
        let a = CsrMatrix::from_dense(&dense, 0.0);
        let k = 3.min(s);
        let r = fkv_low_rank(&a, k, s, seed).expect("valid dims");
        prop_assert!(r.error_sq >= -1e-9);
        prop_assert!(r.error_sq <= r.total_sq + 1e-9);
        // Optimum via exact spectrum.
        let f = lsi_linalg::svd::svd(&dense).expect("finite");
        let head: f64 = f.singular_values.iter().take(k).map(|x| x * x).sum();
        let opt = (a.frobenius_sq() - head).max(0.0);
        prop_assert!(r.error_sq >= opt - 1e-6, "beat the optimum: {} < {opt}", r.error_sq);
    }
}
