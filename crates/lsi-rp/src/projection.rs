//! Random projection matrices.
//!
//! The paper projects with a random **column-orthonormal** `n × l` matrix
//! `R` (a uniformly random `l`-dimensional subspace) and scales by
//! `√(n/l)`. Achlioptas-style sign and sparse projections satisfy the same
//! JL guarantees with cheaper generation and application; they are provided
//! for the ablation experiment (E10 in `DESIGN.md`).

use lsi_linalg::rng::{random_orthonormal, seeded};
use lsi_linalg::{CsrMatrix, LinalgError, LinearOperator, Matrix};
use rand::Rng;

/// Which random ensemble the projection matrix is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjectionKind {
    /// The paper's choice: a random column-orthonormal `n × l` matrix,
    /// scaled by `√(n/l)` on application.
    OrthonormalSubspace,
    /// I.i.d. `N(0, 1)` entries scaled by `1/√l`.
    GaussianIid,
    /// Achlioptas signs: `±1` with probability 1/2 each, scaled by `1/√l`.
    SignsAchlioptas,
    /// Achlioptas sparse: `{+1, 0, −1}` with probabilities `{1/6, 2/3,
    /// 1/6}`, scaled by `√(3/l)` — two thirds of the entries vanish.
    SparseAchlioptas,
}

impl ProjectionKind {
    /// All kinds, for sweeps.
    pub const ALL: [ProjectionKind; 4] = [
        ProjectionKind::OrthonormalSubspace,
        ProjectionKind::GaussianIid,
        ProjectionKind::SignsAchlioptas,
        ProjectionKind::SparseAchlioptas,
    ];

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ProjectionKind::OrthonormalSubspace => "orthonormal",
            ProjectionKind::GaussianIid => "gaussian",
            ProjectionKind::SignsAchlioptas => "signs",
            ProjectionKind::SparseAchlioptas => "sparse",
        }
    }
}

/// A materialized random projection from `Rⁿ` to `Rˡ`.
///
/// Stored row-major as the `l × n` projector (scaling folded in), so
/// applying to a vector is one dense mat-vec and applying to a sparse matrix
/// is `O(nnz · l)`.
///
/// # Examples
///
/// ```
/// use lsi_rp::{ProjectionKind, RandomProjection};
///
/// let p = RandomProjection::new(ProjectionKind::OrthonormalSubspace, 100, 20, 42).unwrap();
/// let x = vec![1.0; 100];
/// let y = p.project_vector(&x).unwrap();
/// assert_eq!(y.len(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct RandomProjection {
    /// The `l × n` projector, scaling included.
    projector: Matrix,
    kind: ProjectionKind,
}

impl RandomProjection {
    /// Draws a projection from `n` down to `l` dimensions. Requires
    /// `1 ≤ l ≤ n`.
    pub fn new(kind: ProjectionKind, n: usize, l: usize, seed: u64) -> Result<Self, LinalgError> {
        if l == 0 || l > n {
            return Err(LinalgError::InvalidDimension {
                op: "RandomProjection::new",
                detail: format!("need 1 <= l <= n, got l={l}, n={n}"),
            });
        }
        let mut rng = seeded(seed);
        let projector = match kind {
            ProjectionKind::OrthonormalSubspace => {
                let r = random_orthonormal(&mut rng, n, l)?;
                r.transpose().scaled((n as f64 / l as f64).sqrt())
            }
            ProjectionKind::GaussianIid => {
                let scale = 1.0 / (l as f64).sqrt();
                let mut m = lsi_linalg::rng::gaussian_matrix(&mut rng, l, n);
                m.map_inplace(|x| x * scale);
                m
            }
            ProjectionKind::SignsAchlioptas => {
                let scale = 1.0 / (l as f64).sqrt();
                Matrix::from_fn(l, n, |_, _| if rng.gen::<bool>() { scale } else { -scale })
            }
            ProjectionKind::SparseAchlioptas => {
                let scale = (3.0 / l as f64).sqrt();
                Matrix::from_fn(l, n, |_, _| {
                    let u: f64 = rng.gen();
                    if u < 1.0 / 6.0 {
                        scale
                    } else if u < 1.0 / 3.0 {
                        -scale
                    } else {
                        0.0
                    }
                })
            }
        };
        Ok(RandomProjection { projector, kind })
    }

    /// Source dimension `n`.
    pub fn input_dim(&self) -> usize {
        self.projector.ncols()
    }

    /// Target dimension `l`.
    pub fn output_dim(&self) -> usize {
        self.projector.nrows()
    }

    /// The ensemble this projection was drawn from.
    pub fn kind(&self) -> ProjectionKind {
        self.kind
    }

    /// The materialized `l × n` projector (scaling included).
    pub fn projector(&self) -> &Matrix {
        &self.projector
    }

    /// Projects a single length-`n` vector.
    pub fn project_vector(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.projector.matvec(x)
    }

    /// Projects every **column** of a sparse `n × m` matrix, producing the
    /// dense `l × m` matrix `B = P A`. `O(nnz(A) · l)`.
    pub fn project_columns(&self, a: &CsrMatrix) -> Result<Matrix, LinalgError> {
        let (n, l) = (self.input_dim(), self.output_dim());
        if a.nrows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "project_columns",
                left: (l, n),
                right: (a.nrows(), a.ncols()),
            });
        }
        let m = a.ncols();
        let mut out = Matrix::zeros(l, m);
        // B[i, j] = Σ_t P[i, t] · A[t, j]. Keeping the output row `i`
        // outermost makes both the projector row and the output row
        // contiguous in memory (both matrices are row-major); the inner
        // scatter walks A's rows once per output dimension.
        for i in 0..l {
            for t in 0..n {
                let p = self.projector[(i, t)];
                if p == 0.0 {
                    continue;
                }
                for (j, v) in a.row_entries(t) {
                    out[(i, j)] += v * p;
                }
            }
        }
        Ok(out)
    }

    /// Projects every column of a dense `n × m` matrix.
    pub fn project_dense_columns(&self, a: &Matrix) -> Result<Matrix, LinalgError> {
        self.projector.matmul(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_linalg::vector;

    #[test]
    fn rejects_bad_dimensions() {
        assert!(RandomProjection::new(ProjectionKind::GaussianIid, 5, 0, 1).is_err());
        assert!(RandomProjection::new(ProjectionKind::GaussianIid, 5, 6, 1).is_err());
    }

    #[test]
    fn dimensions_and_kind() {
        let p = RandomProjection::new(ProjectionKind::SignsAchlioptas, 20, 5, 2).unwrap();
        assert_eq!(p.input_dim(), 20);
        assert_eq!(p.output_dim(), 5);
        assert_eq!(p.kind().name(), "signs");
    }

    #[test]
    fn orthonormal_rows_scaled() {
        let n = 30;
        let l = 6;
        let p = RandomProjection::new(ProjectionKind::OrthonormalSubspace, n, l, 3).unwrap();
        // Rows of the projector are orthogonal with squared norm n/l.
        let proj = p.projector();
        for i in 0..l {
            let r2 = vector::norm_sq(proj.row(i));
            assert!((r2 - n as f64 / l as f64).abs() < 1e-9, "row {i}: {r2}");
            for j in 0..i {
                let d = vector::dot(proj.row(i), proj.row(j));
                assert!(d.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        for kind in ProjectionKind::ALL {
            let a = RandomProjection::new(kind, 12, 4, 7).unwrap();
            let b = RandomProjection::new(kind, 12, 4, 7).unwrap();
            assert_eq!(a.projector().max_abs_diff(b.projector()), Some(0.0));
        }
    }

    #[test]
    fn sparse_achlioptas_density() {
        let p = RandomProjection::new(ProjectionKind::SparseAchlioptas, 100, 50, 11).unwrap();
        let zeros = p
            .projector()
            .as_slice()
            .iter()
            .filter(|&&x| x == 0.0)
            .count();
        let frac = zeros as f64 / (100.0 * 50.0);
        assert!((frac - 2.0 / 3.0).abs() < 0.03, "zero fraction {frac}");
    }

    #[test]
    fn project_columns_matches_dense_path() {
        let dense = Matrix::from_fn(10, 6, |i, j| ((i * 7 + j * 3) % 5) as f64 - 1.0);
        let sparse = CsrMatrix::from_dense(&dense, 0.0);
        for kind in ProjectionKind::ALL {
            let p = RandomProjection::new(kind, 10, 4, 13).unwrap();
            let via_sparse = p.project_columns(&sparse).unwrap();
            let via_dense = p.project_dense_columns(&dense).unwrap();
            assert!(
                via_sparse.max_abs_diff(&via_dense).unwrap() < 1e-10,
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn project_columns_rejects_mismatch() {
        let p = RandomProjection::new(ProjectionKind::GaussianIid, 10, 3, 1).unwrap();
        let a = CsrMatrix::zeros(8, 5);
        assert!(p.project_columns(&a).is_err());
    }

    #[test]
    fn project_vector_linear() {
        let p = RandomProjection::new(ProjectionKind::GaussianIid, 8, 3, 5).unwrap();
        let x = vec![1.0; 8];
        let y = vec![0.5; 8];
        let px = p.project_vector(&x).unwrap();
        let py = p.project_vector(&y).unwrap();
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let psum = p.project_vector(&sum).unwrap();
        for i in 0..3 {
            assert!((psum[i] - px[i] - py[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn norms_roughly_preserved_in_expectation() {
        // With l = 64 on n = 256, relative distortion should be modest.
        let n = 256;
        let l = 64;
        let p = RandomProjection::new(ProjectionKind::OrthonormalSubspace, n, l, 21).unwrap();
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
        let px = p.project_vector(&x).unwrap();
        let ratio = vector::norm(&px) / vector::norm(&x);
        assert!((ratio - 1.0).abs() < 0.35, "ratio {ratio}");
    }
}
