//! Empirical Johnson–Lindenstrauss verification (Lemma 2 / experiment E4).
//!
//! Lemma 2 (plus the discussion following it) says: projecting to a random
//! `l = Ω(log m / ε²)`-dimensional subspace preserves all pairwise Euclidean
//! distances within `1 ± ε`, and all inner products of unit-norm vectors
//! within `2ε`, with high probability. [`measure_distortion`] measures both
//! on concrete data.

use lsi_linalg::{vector, Matrix};

/// Measured distortion of a projection over a set of vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistortionReport {
    /// Largest relative distance distortion `|‖p(x)−p(y)‖/‖x−y‖ − 1|`
    /// over all measured pairs.
    pub max_distance_distortion: f64,
    /// Mean relative distance distortion.
    pub mean_distance_distortion: f64,
    /// Largest absolute inner-product error after normalizing the inputs to
    /// unit length (Lemma 2's corollary bounds this by `2ε`).
    pub max_inner_product_error: f64,
    /// Number of pairs measured.
    pub pairs: usize,
}

/// Measures pairwise distortion between `original` and `projected` vectors
/// (both matrices hold one vector per **column**; column counts must match).
///
/// Pairs at distance ≤ `1e-12` in the original space are skipped (relative
/// distortion is undefined there). Returns `None` when no measurable pairs
/// remain.
pub fn measure_distortion(original: &Matrix, projected: &Matrix) -> Option<DistortionReport> {
    assert_eq!(
        original.ncols(),
        projected.ncols(),
        "measure_distortion: one projected vector per original vector"
    );
    let m = original.ncols();
    // Columns are strided; pull them out once.
    let orig: Vec<Vec<f64>> = (0..m).map(|j| original.col(j)).collect();
    let proj: Vec<Vec<f64>> = (0..m).map(|j| projected.col(j)).collect();

    let mut max_d = 0.0f64;
    let mut sum_d = 0.0f64;
    let mut max_ip = 0.0f64;
    let mut pairs = 0usize;

    for i in 0..m {
        for j in i + 1..m {
            let d0 = vector::distance(&orig[i], &orig[j]);
            if d0 <= 1e-12 {
                continue;
            }
            let d1 = vector::distance(&proj[i], &proj[j]);
            let distortion = (d1 / d0 - 1.0).abs();
            max_d = max_d.max(distortion);
            sum_d += distortion;
            pairs += 1;

            // Inner products of the unit-normalized originals.
            let (n_i, n_j) = (vector::norm(&orig[i]), vector::norm(&orig[j]));
            if n_i > 0.0 && n_j > 0.0 {
                let ip0 = vector::dot(&orig[i], &orig[j]) / (n_i * n_j);
                let ip1 = vector::dot(&proj[i], &proj[j]) / (n_i * n_j);
                max_ip = max_ip.max((ip1 - ip0).abs());
            }
        }
    }

    (pairs > 0).then(|| DistortionReport {
        max_distance_distortion: max_d,
        mean_distance_distortion: sum_d / pairs as f64,
        max_inner_product_error: max_ip,
        pairs,
    })
}

/// The dimension Lemma 2 asks for: `l = ⌈c · ln(m) / ε²⌉`, clamped to at
/// least 1. The lemma's constant is absorbed in `c`; `c = 4` matches the
/// classical `(ε²/2 − ε³/3)⁻¹`-style bounds for moderate ε.
pub fn recommended_dimension(m: usize, epsilon: f64, c: f64) -> usize {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
    assert!(c > 0.0, "constant must be positive");
    let l = (c * (m.max(2) as f64).ln() / (epsilon * epsilon)).ceil();
    l.max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::{ProjectionKind, RandomProjection};
    use lsi_linalg::rng::{gaussian_matrix, seeded};

    #[test]
    fn identity_projection_has_zero_distortion() {
        let mut rng = seeded(1);
        let a = gaussian_matrix(&mut rng, 6, 10);
        let r = measure_distortion(&a, &a).unwrap();
        assert!(r.max_distance_distortion < 1e-12);
        assert!(r.max_inner_product_error < 1e-12);
        assert_eq!(r.pairs, 45);
    }

    #[test]
    fn duplicate_points_are_skipped() {
        let a = Matrix::from_rows(&[&[1.0, 1.0, 2.0], &[0.0, 0.0, 1.0]]).unwrap();
        let r = measure_distortion(&a, &a).unwrap();
        // Pair (0,1) has zero distance and is skipped; pairs (0,2), (1,2) remain.
        assert_eq!(r.pairs, 2);
    }

    #[test]
    fn all_identical_returns_none() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]).unwrap();
        assert!(measure_distortion(&a, &a).is_none());
    }

    #[test]
    fn random_projection_distortion_shrinks_with_l() {
        let mut rng = seeded(7);
        let n = 400;
        let m = 40;
        let a = gaussian_matrix(&mut rng, n, m);
        let sparse = lsi_linalg::CsrMatrix::from_dense(&a, 0.0);
        let mut prev = f64::INFINITY;
        for &l in &[10usize, 40, 160] {
            let p = RandomProjection::new(ProjectionKind::OrthonormalSubspace, n, l, 99).unwrap();
            let b = p.project_columns(&sparse).unwrap();
            let r = measure_distortion(&a, &b).unwrap();
            assert!(
                r.max_distance_distortion < prev + 0.05,
                "distortion did not shrink: l={l}, {} vs prev {prev}",
                r.max_distance_distortion
            );
            prev = r.max_distance_distortion;
        }
        // At l = 160 on 40 points, distortion should be comfortably < 0.5.
        assert!(prev < 0.5, "final distortion {prev}");
    }

    #[test]
    fn recommended_dimension_scales() {
        let l1 = recommended_dimension(1000, 0.5, 4.0);
        let l2 = recommended_dimension(1000, 0.25, 4.0);
        assert!(l2 > 3 * l1, "quadrupling expected: {l1} -> {l2}");
        let l3 = recommended_dimension(1_000_000, 0.5, 4.0);
        assert!(l3 > l1);
        assert!(recommended_dimension(2, 0.9, 0.1) >= 1);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn recommended_dimension_rejects_bad_eps() {
        recommended_dimension(10, 1.5, 4.0);
    }
}
