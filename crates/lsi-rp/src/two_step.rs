//! The two-step RP + LSI pipeline and the Theorem 5 accounting.
//!
//! Step 1: project the `n × m` term–document matrix to `l` dimensions,
//! `B = √(n/l) Rᵀ A` — now every document is a length-`l` vector.
//! Step 2: compute the rank-`2k` SVD of `B` (dense — `B` is small) and take
//! its top right singular vectors `b_1 … b_{2k}`. The final approximation is
//!
//! ```text
//! B₂ₖ = A · Σᵢ₌₁²ᵏ bᵢ bᵢᵀ
//! ```
//!
//! i.e. `A`'s columnsᵀ projected onto the span of the `bᵢ` — computable
//! without ever factoring `A` itself.

use lsi_linalg::svd::svd;
use lsi_linalg::{CsrMatrix, LinalgError, LinearOperator, Matrix};

use crate::projection::{ProjectionKind, RandomProjection};

/// Outcome of the two-step pipeline.
#[derive(Debug, Clone)]
pub struct TwoStepResult {
    /// `m × 2k` orthonormal basis of the recovered document subspace (the
    /// top right singular vectors of `B`, one per column).
    pub doc_basis: Matrix,
    /// The top `2k` singular values of the projected matrix `B` (estimates
    /// of `A`'s, by Lemma 3).
    pub singular_values: Vec<f64>,
    /// `‖A − B₂ₖ‖²_F` — the two-step reconstruction error.
    pub error_sq: f64,
    /// `‖A‖²_F`, for normalizing.
    pub total_sq: f64,
    /// The projection dimension `l` used.
    pub l: usize,
    /// The LSI target rank `k` (the approximation uses rank `2k`).
    pub k: usize,
}

impl TwoStepResult {
    /// Theorem 5's guarantee, rearranged: the excess error over direct
    /// rank-k LSI, as a fraction of `‖A‖²_F`. Theorem 5 says this is ≤ 2ε
    /// when `l = Ω(log n / ε²)`.
    pub fn excess_error_fraction(&self, direct_error_sq: f64) -> f64 {
        if self.total_sq <= 0.0 {
            return 0.0;
        }
        (self.error_sq - direct_error_sq) / self.total_sq
    }

    /// Document `j`'s representation in the recovered `2k`-dimensional
    /// space: row `j` of the basis (documents index the rows of `Vᵀ`'s
    /// transpose).
    pub fn doc_vector(&self, j: usize) -> &[f64] {
        self.doc_basis.row(j)
    }

    /// All document representations with LSI's `V D` scaling: row `j` is
    /// document `j`'s basis row weighted by the singular values of `B`.
    /// This is the analog of [`lsi_linalg::TruncatedSvd::doc_representation`]
    /// for the two-step pipeline and the right input for skew/angle
    /// measurements.
    pub fn doc_representations(&self) -> Matrix {
        let (m, k2) = self.doc_basis.shape();
        let mut out = self.doc_basis.clone();
        for j in 0..m {
            let row = out.row_mut(j);
            for (i, x) in row.iter_mut().enumerate().take(k2) {
                *x *= self.singular_values.get(i).copied().unwrap_or(0.0);
            }
        }
        out
    }
}

/// Runs the two-step pipeline on a sparse term–document matrix.
///
/// * `k` — the LSI rank being approximated (the pipeline keeps `2k`
///   dimensions, per Theorem 5).
/// * `l` — the random projection dimension; must satisfy `2k ≤ l ≤ n`.
pub fn two_step_lsi(
    a: &CsrMatrix,
    k: usize,
    l: usize,
    kind: ProjectionKind,
    seed: u64,
) -> Result<TwoStepResult, LinalgError> {
    let (n, m) = (a.nrows(), a.ncols());
    if k == 0 || 2 * k > l || 2 * k > m {
        return Err(LinalgError::InvalidDimension {
            op: "two_step_lsi",
            detail: format!("need 1 <= 2k <= min(l, m); got k={k}, l={l}, m={m}"),
        });
    }

    // Step 1: B = scaled Rᵀ A (l × m dense).
    let projection = RandomProjection::new(kind, n, l, seed)?;
    let b = projection.project_columns(a)?;

    // Step 2: rank-2k right singular vectors of B.
    let f = svd(&b)?;
    let keep = (2 * k).min(f.len());
    let vt = f.vt.rows_prefix(keep)?; // 2k × m
    let doc_basis = vt.transpose(); // m × 2k
    let singular_values = f.singular_values[..keep].to_vec();

    // ‖A − A·V Vᵀ‖²_F = ‖A‖²_F − ‖A V‖²_F  (orthogonal projection).
    let total_sq = a.frobenius_sq();
    let mut captured = 0.0;
    for i in 0..keep {
        let av = a.apply(doc_basis.col(i).as_slice())?;
        captured += av.iter().map(|x| x * x).sum::<f64>();
    }
    let error_sq = (total_sq - captured).max(0.0);

    Ok(TwoStepResult {
        doc_basis,
        singular_values,
        error_sq,
        total_sq,
        l,
        k,
    })
}

/// `‖A − A_k‖²_F` for direct rank-k LSI, computed from the exact spectrum
/// (dense SVD) — the comparison baseline in Theorem 5.
pub fn direct_lsi_error_sq(a: &CsrMatrix, k: usize) -> Result<f64, LinalgError> {
    let f = svd(&a.to_dense_matrix())?;
    let total: f64 = f.singular_values.iter().map(|s| s * s).sum();
    let head: f64 = f.singular_values.iter().take(k).map(|s| s * s).sum();
    Ok((total - head).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_corpus::{SeparableConfig, SeparableModel};
    use lsi_linalg::rng::seeded;

    fn corpus_matrix(seed: u64, topics: usize, docs: usize) -> CsrMatrix {
        let model = SeparableModel::build(SeparableConfig::small(topics, 0.05)).unwrap();
        let mut rng = seeded(seed);
        let corpus = model.model().sample_corpus(docs, &mut rng);
        CsrMatrix::from_triplets(corpus.universe_size(), corpus.len(), &corpus.to_triplets())
            .unwrap()
    }

    #[test]
    fn validates_parameters() {
        let a = corpus_matrix(1, 3, 30);
        assert!(two_step_lsi(&a, 0, 10, ProjectionKind::GaussianIid, 1).is_err());
        assert!(two_step_lsi(&a, 6, 10, ProjectionKind::GaussianIid, 1).is_err()); // 2k > l
        assert!(two_step_lsi(&a, 3, 1000, ProjectionKind::GaussianIid, 1).is_err());
        // l > n
    }

    #[test]
    fn error_decreases_with_l() {
        let a = corpus_matrix(2, 4, 60);
        let mut prev = f64::INFINITY;
        for &l in &[10usize, 25, 60] {
            let r = two_step_lsi(&a, 4, l, ProjectionKind::OrthonormalSubspace, 7).unwrap();
            assert!(
                r.error_sq <= prev * 1.05,
                "error grew: l={l}, {} vs {prev}",
                r.error_sq
            );
            prev = r.error_sq;
        }
    }

    #[test]
    fn theorem5_inequality_holds_for_large_l() {
        // On a topic-structured corpus with l comfortably above 2k, the
        // excess error over direct LSI should be a small fraction of ‖A‖².
        let a = corpus_matrix(3, 4, 60);
        let k = 4;
        let direct = direct_lsi_error_sq(&a, k).unwrap();
        let r = two_step_lsi(&a, k, 40, ProjectionKind::OrthonormalSubspace, 11).unwrap();
        let excess = r.excess_error_fraction(direct);
        // Note the excess can be negative: B₂ₖ has rank 2k and may beat the
        // rank-k optimum. Theorem 5 only bounds it from above.
        assert!(excess < 0.05, "excess fraction {excess}");
    }

    #[test]
    fn full_dimension_projection_recovers_exactly() {
        // l = n and 2k ≥ rank ⇒ B₂ₖ captures everything a rank-2k
        // projection can; with a tiny rank-structured matrix this is exact.
        let dense = Matrix::from_fn(6, 8, |i, j| ((i + 1) * (j + 1)) as f64); // rank 1
        let a = CsrMatrix::from_dense(&dense, 0.0);
        let r = two_step_lsi(&a, 1, 6, ProjectionKind::OrthonormalSubspace, 3).unwrap();
        assert!(
            r.error_sq < 1e-9 * r.total_sq,
            "rank-1 matrix should be fully recovered: {}",
            r.error_sq
        );
    }

    #[test]
    fn doc_basis_is_orthonormal() {
        let a = corpus_matrix(4, 3, 40);
        let r = two_step_lsi(&a, 3, 20, ProjectionKind::GaussianIid, 5).unwrap();
        assert_eq!(r.doc_basis.shape(), (40, 6));
        let err = lsi_linalg::qr::orthonormality_error(&r.doc_basis);
        assert!(err < 1e-9, "{err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = corpus_matrix(5, 3, 30);
        let x = two_step_lsi(&a, 2, 15, ProjectionKind::SignsAchlioptas, 9).unwrap();
        let y = two_step_lsi(&a, 2, 15, ProjectionKind::SignsAchlioptas, 9).unwrap();
        assert_eq!(x.error_sq, y.error_sq);
    }

    #[test]
    fn direct_error_matches_tail_spectrum() {
        let dense = Matrix::from_diag(&[5.0, 3.0, 1.0]);
        let a = CsrMatrix::from_dense(&dense, 0.0);
        let e = direct_lsi_error_sq(&a, 1).unwrap();
        assert!((e - (9.0 + 1.0)).abs() < 1e-10);
        let e2 = direct_lsi_error_sq(&a, 3).unwrap();
        assert!(e2.abs() < 1e-10);
    }

    use lsi_linalg::Matrix;
}
