//! Column-sampling low-rank approximation (Frieze–Kannan–Vempala).
//!
//! Section 5 of the paper describes the alternative speedup of \[15\]:
//! "They compute an approximate singular value decomposition from a randomly
//! chosen submatrix of A. For any given k, ε, δ, their Monte Carlo algorithm
//! finds the description of a matrix D of rank at most k so that
//! `‖A − D‖_F ≤ ‖A − A_k‖_F + ε‖A‖_F` holds with probability at least
//! 1 − δ."
//!
//! The implementation follows the classical recipe: draw `s` columns with
//! probability proportional to their squared norm, rescale each sampled
//! column by `1/√(s·p_j)`, take the top-`k` left singular vectors `H` of the
//! sampled matrix, and output the projection `D = H Hᵀ A`. The paper also
//! notes that LSI folklore "sampled" corpora ad hoc; this module is the
//! rigorous version of that folklore, and experiment E11 compares it against
//! the random-projection pipeline.

use lsi_linalg::rng::seeded;
use lsi_linalg::svd::svd;
use lsi_linalg::{CsrMatrix, LinalgError, LinearOperator, Matrix};
use rand::Rng;

/// Outcome of the FKV column-sampling approximation.
#[derive(Debug, Clone)]
pub struct FkvResult {
    /// `n × k` orthonormal basis `H` for the approximation's column space.
    pub basis: Matrix,
    /// `‖A − H Hᵀ A‖²_F`.
    pub error_sq: f64,
    /// `‖A‖²_F`, for normalizing.
    pub total_sq: f64,
    /// Number of sampled columns.
    pub s: usize,
    /// Target rank.
    pub k: usize,
}

impl FkvResult {
    /// The FKV guarantee, rearranged: excess error over the rank-k optimum
    /// as a fraction of `‖A‖²_F`.
    pub fn excess_error_fraction(&self, direct_error_sq: f64) -> f64 {
        if self.total_sq <= 0.0 {
            return 0.0;
        }
        (self.error_sq - direct_error_sq) / self.total_sq
    }
}

/// Runs the FKV column-sampling approximation.
///
/// * `k` — target rank, `1 ≤ k ≤ s`.
/// * `s` — number of column samples, `k ≤ s ≤ m` recommended (the bound
///   needs `s = poly(k, 1/ε)`; sampling *with replacement* is the
///   algorithm's own semantics, so `s > m` is permitted but wasteful).
pub fn fkv_low_rank(
    a: &CsrMatrix,
    k: usize,
    s: usize,
    seed: u64,
) -> Result<FkvResult, LinalgError> {
    let (n, m) = (a.nrows(), a.ncols());
    if k == 0 || s < k || m == 0 || n == 0 {
        return Err(LinalgError::InvalidDimension {
            op: "fkv_low_rank",
            detail: format!("need 1 <= k <= s and a nonempty matrix; got k={k}, s={s}, {n}x{m}"),
        });
    }

    let col_norms = a.column_norms();
    let total_sq: f64 = col_norms.iter().map(|x| x * x).sum();
    if total_sq <= 0.0 {
        // Zero matrix: the zero basis is exact.
        return Ok(FkvResult {
            basis: Matrix::zeros(n, k),
            error_sq: 0.0,
            total_sq: 0.0,
            s,
            k,
        });
    }

    // Cumulative distribution over columns, p_j ∝ |A_j|².
    let mut cdf = Vec::with_capacity(m);
    let mut acc = 0.0;
    for &c in &col_norms {
        acc += c * c / total_sq;
        cdf.push(acc);
    }

    // Column access is row-major-hostile; transpose once so sampled columns
    // are contiguous rows.
    let at = a.transpose();

    let mut rng = seeded(seed);
    let mut c = Matrix::zeros(n, s);
    for col in 0..s {
        let u: f64 = rng.gen();
        // lsi-lint: allow(E1-panic-policy, "invariant: the cdf is built from finite, validated column norms")
        let j = match cdf.binary_search_by(|x| x.partial_cmp(&u).expect("finite cdf")) {
            Ok(idx) | Err(idx) => idx.min(m - 1),
        };
        let p_j = col_norms[j] * col_norms[j] / total_sq;
        let scale = 1.0 / (s as f64 * p_j).sqrt();
        for (row, v) in at.row_entries(j) {
            c[(row, col)] = v * scale;
        }
    }

    // Top-k left singular vectors of the sampled matrix.
    let f = svd(&c)?;
    let keep = k.min(f.len());
    let mut basis = f.u.columns_prefix(keep)?;
    if keep < k {
        // Pad with zero columns to the requested rank.
        let mut padded = Matrix::zeros(n, k);
        for j in 0..keep {
            padded.set_col(j, &basis.col(j));
        }
        basis = padded;
    }

    // ‖A − H Hᵀ A‖²_F = ‖A‖²_F − ‖Hᵀ A‖²_F for orthonormal H.
    let mut captured = 0.0;
    for j in 0..k {
        let h = basis.col(j);
        if h.iter().all(|&x| x == 0.0) {
            continue;
        }
        let at_h = a.apply_transpose(&h)?;
        captured += at_h.iter().map(|x| x * x).sum::<f64>();
    }
    let error_sq = (total_sq - captured).max(0.0);

    Ok(FkvResult {
        basis,
        error_sq,
        total_sq,
        s,
        k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_corpus::{SeparableConfig, SeparableModel};
    use lsi_linalg::qr::orthonormality_error;

    fn corpus_matrix(seed: u64) -> CsrMatrix {
        let model = SeparableModel::build(SeparableConfig::small(4, 0.05)).unwrap();
        let mut rng = seeded(seed);
        let corpus = model.model().sample_corpus(80, &mut rng);
        CsrMatrix::from_triplets(corpus.universe_size(), corpus.len(), &corpus.to_triplets())
            .unwrap()
    }

    #[test]
    fn validates_parameters() {
        let a = corpus_matrix(1);
        assert!(fkv_low_rank(&a, 0, 5, 1).is_err());
        assert!(fkv_low_rank(&a, 6, 5, 1).is_err()); // s < k
    }

    #[test]
    fn error_bounded_and_improving_with_s() {
        let a = corpus_matrix(2);
        let k = 4;
        // Exact rank-k error via dense SVD.
        let f = svd(&a.to_dense_matrix()).unwrap();
        let head: f64 = f.singular_values.iter().take(k).map(|x| x * x).sum();
        let direct = a.frobenius_sq() - head;

        let small = fkv_low_rank(&a, k, 8, 7).unwrap();
        let large = fkv_low_rank(&a, k, 64, 7).unwrap();
        assert!(small.error_sq >= direct - 1e-9, "cannot beat the optimum");
        assert!(
            large.excess_error_fraction(direct) < small.excess_error_fraction(direct) + 0.02,
            "more samples should not hurt much: {} vs {}",
            large.excess_error_fraction(direct),
            small.excess_error_fraction(direct)
        );
        // At s = 64 on a strongly clustered corpus the excess is small.
        assert!(
            large.excess_error_fraction(direct) < 0.08,
            "excess {}",
            large.excess_error_fraction(direct)
        );
    }

    #[test]
    fn basis_is_orthonormal() {
        let a = corpus_matrix(3);
        let r = fkv_low_rank(&a, 3, 20, 5).unwrap();
        assert_eq!(r.basis.shape(), (a.nrows(), 3));
        assert!(orthonormality_error(&r.basis) < 1e-9);
    }

    #[test]
    fn zero_matrix_is_exact() {
        let a = CsrMatrix::zeros(5, 4);
        let r = fkv_low_rank(&a, 2, 3, 1).unwrap();
        assert_eq!(r.error_sq, 0.0);
        assert_eq!(r.total_sq, 0.0);
    }

    #[test]
    fn rank_one_matrix_recovered_exactly() {
        let dense = Matrix::from_fn(8, 6, |i, j| ((i + 1) * (j + 2)) as f64);
        let a = CsrMatrix::from_dense(&dense, 0.0);
        let r = fkv_low_rank(&a, 1, 4, 9).unwrap();
        // Every column is parallel, so any sampled column spans the range.
        assert!(r.error_sq < 1e-9 * r.total_sq, "error {}", r.error_sq);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = corpus_matrix(4);
        let x = fkv_low_rank(&a, 2, 10, 11).unwrap();
        let y = fkv_low_rank(&a, 2, 10, 11).unwrap();
        assert_eq!(x.error_sq, y.error_sq);
    }
}
