#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Random projection and the two-step RP + LSI pipeline (Section 5).
//!
//! The paper's algorithmic contribution: project the term–document matrix
//! onto a random `l`-dimensional subspace (`B = √(n/l) Rᵀ A`), then run
//! rank-`2k` LSI on the *small* matrix `B`. Theorem 5 guarantees
//!
//! ```text
//! ‖A − B₂ₖ‖²_F ≤ ‖A − A_k‖²_F + 2ε‖A‖²_F
//! ```
//!
//! for `l = Ω(log n / ε²)` — almost all of direct LSI's recovery at a
//! fraction of the cost (`O(m l (l + c))` vs `O(m n c)`).
//!
//! * [`projection`] — the projection matrices: the paper's random
//!   orthonormal subspace, plus i.i.d. Gaussian and Achlioptas sign/sparse
//!   variants as cheaper drop-ins.
//! * [`jl`] — empirical verification of the Johnson–Lindenstrauss lemma
//!   (Lemma 2): distance and inner-product distortion measurement.
//! * [`two_step`] — the two-step pipeline and the Theorem 5 accounting.

//! * [`sampling`] — the column-sampling (Frieze–Kannan–Vempala) alternative
//!   speedup the paper discusses alongside random projection.

pub mod jl;
pub mod projection;
pub mod sampling;
pub mod two_step;

pub use jl::{measure_distortion, recommended_dimension, DistortionReport};
pub use projection::{ProjectionKind, RandomProjection};
pub use sampling::{fkv_low_rank, FkvResult};
pub use two_step::{two_step_lsi, TwoStepResult};
