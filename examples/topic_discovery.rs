//! The Section 4 experiment, end to end: generate a corpus from a pure
//! ε-separable model, run rank-k LSI, and print the paper's angle table —
//! intratopic pairs collapse to near-parallel while intertopic pairs stay
//! near-orthogonal.
//!
//! ```sh
//! cargo run --release --example topic_discovery [-- --paper-scale]
//! ```

use lsi_repro::core::angles::{format_report, pairwise_angle_stats};
use lsi_repro::core::{LsiConfig, LsiIndex};
use lsi_repro::corpus::{SeparableConfig, SeparableModel};
use lsi_repro::ir::TermDocumentMatrix;
use lsi_repro::linalg::rng::seeded;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let (config, m) = if paper_scale {
        (SeparableConfig::paper_experiment(), 1000)
    } else {
        // 40% of the paper's dimensions: 8 topics × 40 primary terms,
        // 400 documents. Fast even in debug builds.
        (
            SeparableConfig {
                universe_size: 320,
                num_topics: 8,
                primary_terms_per_topic: 40,
                epsilon: 0.05,
                min_doc_len: 50,
                max_doc_len: 100,
            },
            400,
        )
    };

    println!(
        "corpus model: {} terms, {} topics, epsilon = {}, {} documents of {}..{} terms",
        config.universe_size,
        config.num_topics,
        config.epsilon,
        m,
        config.min_doc_len,
        config.max_doc_len
    );

    let model = SeparableModel::build(config).expect("valid configuration");
    let mut rng = seeded(2026);
    let corpus = model.model().sample_corpus(m, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("corpus fits universe");
    let labels = td.topic_labels().to_vec();

    // Original space: documents as raw term-count vectors.
    let original_rows = td.counts().transpose().to_dense_matrix();
    let original = pairwise_angle_stats(&original_rows, &labels);

    // LSI space: rank = number of topics, per Theorem 2.
    let index = LsiIndex::build(&td, LsiConfig::with_rank(config.num_topics))
        .expect("rank = #topics is feasible");
    let lsi = pairwise_angle_stats(index.doc_representations(), &labels);

    println!("\npairwise document angles (radians):\n");
    print!("{}", format_report(&original, &lsi));

    if let (Some(o), Some(l)) = (original.intratopic, lsi.intratopic) {
        println!(
            "\nintratopic mean angle: {:.3} -> {:.4} rad ({:.0}x collapse; paper: 1.09 -> 0.0177)",
            o.mean,
            l.mean,
            o.mean / l.mean.max(1e-9)
        );
    }
    println!(
        "retained singular values: {:?}",
        index
            .singular_values()
            .iter()
            .map(|s| (s * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
}
