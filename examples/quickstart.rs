//! Quickstart: index a tiny text corpus, then compare plain vector-space
//! retrieval against LSI on a query that exercises synonymy.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lsi_repro::core::{LsiConfig, LsiIndex, SvdBackend};
use lsi_repro::ir::text::{TextDocument, Tokenizer};
use lsi_repro::ir::{Dictionary, TermDocumentMatrix, VectorSpaceIndex, Weighting};

fn main() {
    // A corpus where "car" and "automobile" are used by different authors
    // for the same concept — the paper's motivating synonymy problem.
    let docs = vec![
        TextDocument::new("d0", "the car engine roared down the highway"),
        TextDocument::new("d1", "an automobile engine needs regular maintenance"),
        TextDocument::new("d2", "the automobile market saw highway sales rise"),
        TextDocument::new("d3", "a car needs a good engine and good brakes"),
        TextDocument::new("d4", "the galaxy contains billions of stars and planets"),
        TextDocument::new("d5", "a starship crossed the galaxy toward distant stars"),
        TextDocument::new("d6", "planets orbit stars across the galaxy"),
    ];

    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    let td =
        TermDocumentMatrix::from_text(&docs, &tokenizer, &mut dict).expect("corpus builds cleanly");
    println!(
        "indexed {} documents over {} distinct terms",
        td.n_docs(),
        td.n_terms()
    );

    // --- Baseline: cosine retrieval in raw term space. ---
    let vsm = VectorSpaceIndex::build(&td.weighted(Weighting::Count));
    let query_term = dict.id("automobile").expect("term in vocabulary");
    let baseline = vsm.query(&[(query_term, 1.0)], 5);
    println!("\nquery \"automobile\" — raw vector space:");
    for hit in baseline.hits() {
        println!("  {}  score {:.3}", docs[hit.doc].id, hit.score);
    }
    println!("  (docs saying \"car\" are invisible: no shared term)");

    // --- LSI: rank-2 spectral index over the same corpus. ---
    let lsi = LsiIndex::build(
        &td,
        LsiConfig {
            rank: 2,
            weighting: Weighting::Count,
            backend: SvdBackend::Dense,
        },
    )
    .expect("rank 2 is feasible for 7 documents");
    let spectral = lsi.query(&[(query_term, 1.0)], 5);
    println!("\nquery \"automobile\" — rank-2 LSI space:");
    for hit in spectral.hits() {
        println!("  {}  score {:.3}", docs[hit.doc].id, hit.score);
    }
    println!("  (the \"car\" documents now surface: LSI bridged the synonyms)");

    // Show the learned geometry: car vs automobile across spaces.
    let car = dict.id("car").expect("term in vocabulary");
    let dense = td.to_dense();
    let raw_cos = lsi_repro::linalg::vector::cosine(dense.row(car), dense.row(query_term));
    let lsi_cos =
        lsi_repro::linalg::vector::cosine(&lsi.term_vector(car), &lsi.term_vector(query_term));
    println!("\nterm similarity car ~ automobile:");
    println!("  raw term space: {raw_cos:.3}");
    println!("  LSI space:      {lsi_cos:.3}");
}
