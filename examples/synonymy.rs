//! The synonymy mechanism of Section 4, made visible: a corpus where two
//! surface forms of one concept never co-occur, yet share their entire
//! context. The difference of the two term axes is a trailing eigenvector
//! of A·Aᵀ, and rank-k LSI projects it out.
//!
//! ```sh
//! cargo run --example synonymy
//! ```

use lsi_repro::core::synonymy::analyze_synonym_pair;
use lsi_repro::core::{LsiConfig, LsiIndex, SvdBackend};
use lsi_repro::corpus::model::StyleMode;
use lsi_repro::corpus::{CorpusModel, DocumentLaw, LengthLaw, Style, Topic};
use lsi_repro::ir::{TermDocumentMatrix, Weighting};
use lsi_repro::linalg::rng::seeded;

const CAR: usize = 0;
const AUTOMOBILE: usize = 1;

fn main() {
    let universe = 30;

    // Topic "vehicles": context terms 2..=10 plus a rare concept word CAR.
    let mut weights = vec![0.0; universe];
    weights[CAR] = 0.3;
    weights[2..=10].fill(1.0);
    let vehicles = Topic::from_weights("vehicles", &weights).expect("valid topic");
    let space_terms: Vec<usize> = (15..=25).collect();
    let space = Topic::concentrated("space", universe, &space_terms, 1.0).expect("valid topic");

    // Two authorship styles (Definition 3): plain keeps "car"; formal
    // rewrites every "car" to "automobile". Each document draws one style.
    let plain = Style::identity(universe);
    let formal =
        Style::substitutions("formal", universe, &[(CAR, AUTOMOBILE, 1.0)]).expect("valid style");

    let model = CorpusModel::new(
        universe,
        vec![vehicles, space],
        vec![plain, formal],
        DocumentLaw {
            topics_per_doc: 1,
            style_mode: StyleMode::RandomSingle,
            length: LengthLaw::Uniform { min: 20, max: 40 },
        },
    )
    .expect("valid model");

    let mut rng = seeded(7);
    let corpus = model.sample_corpus(400, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("fits universe");

    // Verify the setup: the synonyms never co-occur.
    let co_occurrences = (0..td.n_docs())
        .filter(|&j| td.counts().get(CAR, j) > 0.0 && td.counts().get(AUTOMOBILE, j) > 0.0)
        .count();
    println!(
        "documents: {}   car-docs and automobile-docs co-occurring: {}",
        td.n_docs(),
        co_occurrences
    );

    let index = LsiIndex::build(
        &td,
        LsiConfig {
            rank: 2,
            weighting: Weighting::Count,
            backend: SvdBackend::Dense,
        },
    )
    .expect("rank 2 feasible");

    let report = analyze_synonym_pair(&td.to_dense(), &index, CAR, AUTOMOBILE).expect("valid pair");

    println!("\nspectral analysis of the term-term matrix A·Aᵀ:");
    println!(
        "  difference vector (e_car − e_automobile)/√2 aligns with eigenvector #{} of {}",
        report.aligned_eigen_index, report.spectrum_size
    );
    println!("  alignment |cos|: {:.4}", report.alignment);
    println!(
        "  its eigenvalue is {:.2}% of the top eigenvalue",
        100.0 * report.aligned_eigenvalue / report.top_eigenvalue
    );
    println!("\nterm similarity car ~ automobile:");
    println!("  original space cosine: {:.4}", report.original_cosine);
    println!("  LSI space cosine:      {:.4}", report.lsi_cosine);
    println!(
        "\nrank-2 LSI kept eigen directions 0..2 and discarded #{} — the\n\
         'insignificant semantic difference' between the synonyms (Section 4).",
        report.aligned_eigen_index
    );
}
