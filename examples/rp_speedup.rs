//! Section 5's speedup, live: direct Lanczos LSI on the full
//! term–document matrix vs the two-step random-projection pipeline, with
//! the Theorem 5 recovery accounting.
//!
//! ```sh
//! cargo run --release --example rp_speedup
//! ```

use std::time::Instant;

use lsi_repro::corpus::{SeparableConfig, SeparableModel};
use lsi_repro::ir::TermDocumentMatrix;
use lsi_repro::linalg::lanczos::{lanczos_svd, LanczosOptions};
use lsi_repro::linalg::rng::seeded;
use lsi_repro::rp::{two_step_lsi, ProjectionKind};

fn main() {
    let k = 10;
    let n = 4000;
    let m = 500;
    let config = SeparableConfig {
        universe_size: n,
        num_topics: k,
        primary_terms_per_topic: n / k,
        epsilon: 0.05,
        min_doc_len: 50,
        max_doc_len: 100,
    };
    let model = SeparableModel::build(config).expect("valid configuration");
    let mut rng = seeded(512);
    let corpus = model.model().sample_corpus(m, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("fits universe");
    let a = td.counts();
    println!(
        "term-document matrix: {} x {}, {} nonzeros (avg {:.1} terms/doc)",
        td.n_terms(),
        td.n_docs(),
        td.nnz(),
        td.avg_terms_per_doc()
    );

    // Direct rank-k LSI.
    let t0 = Instant::now();
    let direct = lanczos_svd(a, k, &LanczosOptions::default()).expect("valid rank");
    let direct_secs = t0.elapsed().as_secs_f64();
    let total_sq = a.frobenius_sq();
    let head: f64 = direct.singular_values.iter().map(|s| s * s).sum();
    let direct_err = (total_sq - head).max(0.0);
    println!("\ndirect rank-{k} Lanczos LSI:    {direct_secs:.3}s");
    println!("  captured Frobenius mass: {:.2}%", 100.0 * head / total_sq);

    // Two-step pipeline at a few projection dimensions.
    println!("\ntwo-step RP + rank-2k LSI (Theorem 5):");
    println!("    l    secs   captured   excess err vs direct (frac of ‖A‖²)");
    for &l in &[40usize, 80, 160, 320] {
        let t0 = Instant::now();
        let r = two_step_lsi(a, k, l, ProjectionKind::OrthonormalSubspace, 77)
            .expect("valid dimensions");
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{:>5} {:>7.3} {:>9.2}% {:>12.4}",
            l,
            secs,
            100.0 * (r.total_sq - r.error_sq) / r.total_sq,
            r.excess_error_fraction(direct_err)
        );
    }
    println!(
        "\nthe excess column is what Theorem 5 bounds by 2ε for l = Ω(log n / ε²);\n\
         the speedup grows with the vocabulary size n (see bench_e6_runtime)."
    );
}
