//! Incremental LSI: the paper notes the SVD is expensive preprocessing
//! ("great savings in storage and query time at the expense of some
//! considerable preprocessing", §1). Production LSI systems therefore
//! factor once and **fold in** new documents as they arrive, persisting the
//! index between sessions. This example exercises that lifecycle:
//! build → save → load → fold in → query.
//!
//! ```sh
//! cargo run --example incremental_indexing
//! ```

use lsi_repro::core::{read_index, write_index, LsiConfig, LsiIndex};
use lsi_repro::corpus::{SeparableConfig, SeparableModel};
use lsi_repro::ir::TermDocumentMatrix;
use lsi_repro::linalg::rng::seeded;

fn main() {
    // Day 0: factor the initial corpus.
    let model = SeparableModel::build(SeparableConfig {
        universe_size: 200,
        num_topics: 4,
        primary_terms_per_topic: 50,
        epsilon: 0.05,
        min_doc_len: 40,
        max_doc_len: 80,
    })
    .expect("valid configuration");
    let mut rng = seeded(404);
    let corpus = model.model().sample_corpus(120, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("fits universe");
    let index = LsiIndex::build(&td, LsiConfig::with_rank(4)).expect("feasible rank");
    println!(
        "built rank-{} index over {} documents ({} terms)",
        index.rank(),
        index.n_docs(),
        index.n_terms()
    );

    // Persist to disk (the expensive step is now paid for).
    let path = std::env::temp_dir().join("incremental_demo.lsix");
    {
        let mut f = std::fs::File::create(&path).expect("temp file");
        write_index(&mut f, &index).expect("serialize");
    }
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!("saved index: {bytes} bytes at {}", path.display());

    // Day 1: a new session loads the index and folds in fresh documents
    // without re-running the SVD.
    let mut loaded = {
        let mut f = std::fs::File::open(&path).expect("open");
        read_index(&mut f).expect("deserialize")
    };
    let fresh = model.model().sample_corpus(10, &mut rng);
    let mut new_ids = Vec::new();
    for doc in fresh.documents() {
        let terms: Vec<(usize, f64)> = doc
            .counts()
            .iter()
            .map(|&(t, c)| (t, f64::from(c)))
            .collect();
        new_ids.push((loaded.add_document(&terms), doc.topic().expect("pure")));
    }
    println!(
        "folded in {} new documents (now {} total) — no SVD recomputation",
        new_ids.len(),
        loaded.n_docs()
    );

    // The folded documents land next to their topics.
    let mut correct = 0;
    for &(id, topic) in &new_ids {
        let neighbors = loaded.similar_docs(id, 3);
        let on_topic = neighbors
            .hits()
            .iter()
            .filter(|h| h.doc < 120 && td.topic_labels()[h.doc] == Some(topic))
            .count();
        if on_topic >= 2 {
            correct += 1;
        }
    }
    println!(
        "{correct}/{} folded documents have >=2/3 on-topic nearest neighbors",
        new_ids.len()
    );

    // Day 2: persistence round-trips the folded documents too.
    {
        let mut f = std::fs::File::create(&path).expect("temp file");
        write_index(&mut f, &loaded).expect("serialize");
    }
    let reloaded = {
        let mut f = std::fs::File::open(&path).expect("open");
        read_index(&mut f).expect("deserialize")
    };
    assert_eq!(reloaded.n_docs(), loaded.n_docs());
    println!(
        "round-trip preserved all {} documents, including folded ones",
        reloaded.n_docs()
    );
    std::fs::remove_file(&path).ok();
}
