//! Section 6's generalization: "the rows and columns of A could in general
//! be, instead of terms and documents, consumers and products, viewers and
//! movies". This example plants viewer taste groups in a viewers × movies
//! ratings matrix, recovers them spectrally (the graph-theoretic corpus
//! model of Theorem 6), and makes LSI-style recommendations.
//!
//! ```sh
//! cargo run --example collaborative_filtering
//! ```

use lsi_repro::core::{LsiConfig, LsiIndex, SvdBackend};
use lsi_repro::graph::{adjusted_rand_index, spectral_partition, WeightedGraph};
use lsi_repro::ir::{TermDocumentMatrix, Weighting};
use lsi_repro::linalg::rng::seeded;
use rand::Rng;

const GENRES: [&str; 3] = ["sci-fi", "romance", "documentary"];
const MOVIES_PER_GENRE: usize = 8;
const VIEWERS_PER_GROUP: usize = 12;

fn main() {
    let mut rng = seeded(42);
    let n_movies = GENRES.len() * MOVIES_PER_GENRE;
    let n_viewers = GENRES.len() * VIEWERS_PER_GROUP;

    // Ratings: each viewer group watches mostly its own genre, with a
    // little cross-genre noise (the ε leakage of Theorem 6).
    let mut triplets = Vec::new();
    for viewer in 0..n_viewers {
        let group = viewer / VIEWERS_PER_GROUP;
        for movie in 0..n_movies {
            let genre = movie / MOVIES_PER_GENRE;
            let p = if genre == group { 0.7 } else { 0.05 };
            if rng.gen::<f64>() < p {
                let rating = rng.gen_range(3..=5) as f64;
                triplets.push((movie, viewer, rating));
            }
        }
    }
    // Rows = movies ("terms"), columns = viewers ("documents").
    let td =
        TermDocumentMatrix::from_triplets(n_movies, n_viewers, &triplets).expect("valid ratings");
    println!(
        "ratings matrix: {} movies x {} viewers, {} ratings",
        n_movies,
        n_viewers,
        td.nnz()
    );

    // --- Theorem 6 view: viewers as graph nodes, shared taste as edges. ---
    let mut g = WeightedGraph::new(n_viewers);
    let dense = td.to_dense();
    for i in 0..n_viewers {
        for j in i + 1..n_viewers {
            let w = lsi_repro::linalg::vector::dot(&dense.col(i), &dense.col(j));
            if w > 0.0 {
                g.add_edge(i, j, w);
            }
        }
    }
    let truth: Vec<usize> = (0..n_viewers).map(|v| v / VIEWERS_PER_GROUP).collect();
    let labels = spectral_partition(&g, GENRES.len(), &mut seeded(7)).expect("k <= viewer count");
    let ari = adjusted_rand_index(&labels, &truth);
    println!("\nspectral taste-group recovery (Theorem 6): ARI = {ari:.3}");

    // --- LSI view: rank-3 factorization, recommend unseen movies. ---
    let index = LsiIndex::build(
        &td,
        LsiConfig {
            rank: GENRES.len(),
            weighting: Weighting::Count,
            backend: SvdBackend::Dense,
        },
    )
    .expect("rank 3 feasible");

    let viewer = 0; // a sci-fi group member
    let seen: Vec<usize> = (0..n_movies)
        .filter(|&mv| td.counts().get(mv, viewer) > 0.0)
        .collect();
    println!(
        "\nviewer {viewer} (group {}) rated {} movies; recommending from the rest:",
        GENRES[truth[viewer]],
        seen.len()
    );

    // Score each unseen movie by cosine between its LSI term-vector and the
    // viewer's LSI representation.
    let vrep = index.doc_vector(viewer).to_vec();
    let mut recs: Vec<(usize, f64)> = (0..n_movies)
        .filter(|mv| !seen.contains(mv))
        .map(|mv| {
            let score = lsi_repro::linalg::vector::cosine(&index.term_vector(mv), &vrep);
            (mv, score)
        })
        .collect();
    recs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));

    let mut on_genre = 0;
    for &(mv, score) in recs.iter().take(5) {
        let genre = GENRES[mv / MOVIES_PER_GENRE];
        if mv / MOVIES_PER_GENRE == truth[viewer] {
            on_genre += 1;
        }
        println!("  movie {mv:>2} ({genre:<12}) score {score:+.3}");
    }
    println!("\n{on_genre}/5 top recommendations are in the viewer's own genre.");
}
