//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no crate registry, so this vendored crate
//! provides, from scratch, the API surface the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it runs each benchmark a
//! small fixed number of iterations and prints the median wall-clock time —
//! enough for `cargo bench` to compile, run, and give a useful order of
//! magnitude, while staying dependency-free.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per benchmark (tiny compared to criterion's sampling; the
/// point here is a working, dependency-free `cargo bench`).
const ITERS: u32 = 5;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&id.to_string(), &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub's measurement is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; criterion uses it to flush reports).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; its [`iter`](Bencher::iter) method times
/// the routine under test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
    };
    f(&mut b);
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench {label:<50} median {median:?} ({} samples)",
        b.samples.len()
    );
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(42)));
    }

    #[test]
    fn api_round_trip() {
        let mut c = Criterion::default();
        target(&mut c);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
