//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no crate registry, so this
//! vendored crate reimplements, from scratch, exactly the slice of the
//! `rand 0.8` API the workspace uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`]
//! traits, [`rngs::StdRng`], `gen`, `gen_range`, and `fill_bytes`.
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — a
//! well-studied, high-quality small PRNG. Its stream differs from upstream
//! rand's ChaCha12-based `StdRng`, so seed-deterministic experiment outputs
//! are stable *within* this workspace but not comparable to runs linked
//! against crates.io rand.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that [`Rng::gen`] can produce with their "standard" distribution
/// (uniform over the type's natural domain; `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by Lemire-style rejection (no modulo
/// bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone: values below `zone` would be biased.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        if x >= zone {
            return x % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full 64-bit domain: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// High-level convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value with the standard distribution for its type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`; panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64`, expanded with SplitMix64 (the same
    /// expansion upstream rand uses for this method).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded PRNG: xoshiro256++.
    ///
    /// Statistically strong for simulation workloads (passes BigCrush in
    /// its published evaluation); **not** cryptographically secure, which
    /// matches how the workspace uses it (seeded, reproducible
    /// experiments).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0x6a09_e667_f3bc_c909,
                    0xbb67_ae85_84ca_a73b,
                    0x3c6e_f372_fe94_f82b,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    fn next_u64<R: super::RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }

    #[test]
    fn works_through_mut_reference_and_unsized_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = next_u64(&mut &mut rng);
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let x: f64 = takes_unsized(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_f64_in_unit_interval_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..7);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&y));
            seen_lo |= y == 3;
            seen_hi |= y == 5;
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        use super::RngCore;
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn all_zero_seed_is_not_a_fixed_point() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
