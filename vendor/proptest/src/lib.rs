//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry, so this vendored crate
//! reimplements, from scratch, the slice of proptest's API the workspace's
//! property tests use: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, the
//! [`collection`] constructors, [`num::u64::ANY`], and the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`] macros.
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! corpus: each test runs its body on `cases` deterministic pseudo-random
//! inputs (seeded from the test's name, so failures reproduce exactly).
//! Assertion macros panic directly, which keeps failure output readable in
//! plain `cargo test`.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a collection size: a fixed count or a range.
    pub trait SizeRange {
        /// Draws a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            rng.usize_in(self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(*self.start(), *self.end())
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// A `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing a `HashSet` of values from an element strategy.
    pub struct HashSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// A `HashSet<S::Value>` with cardinality *at most* the drawn size
    /// (fewer when the element domain is too small to supply distinct
    /// values — mirroring proptest's behaviour of not looping forever).
    pub fn hash_set<S, Z>(element: S, size: Z) -> HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        Z: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    impl<S, Z> Strategy for HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        Z: SizeRange,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < 20 * target + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Numeric strategies mirroring `proptest::num`.
pub mod num {
    /// Strategies over `u64`.
    pub mod u64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for a uniformly random `u64`.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniform over the whole `u64` domain.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u64;

            fn generate(&self, rng: &mut TestRng) -> u64 {
                rng.next_u64()
            }
        }
    }
}

/// The commonly-imported names, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                // The body runs in a closure returning `Result` — as in real
                // proptest — so `prop_assume!` and explicit `return Ok(())`
                // can skip a case by returning early.
                let mut case = || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                };
                if let ::core::result::Result::Err(e) = case() {
                    panic!("property test case failed: {}", e);
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..200 {
            let x = (1usize..=8).generate(&mut rng);
            assert!((1..=8).contains(&x));
            let (a, b, v) = ((0usize..4), (0usize..7), -5.0f64..5.0).generate(&mut rng);
            assert!(a < 4 && b < 7 && (-5.0..5.0).contains(&v));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn hash_set_caps_at_domain_size() {
        let mut rng = TestRng::for_test("hs");
        let s = crate::collection::hash_set(0usize..3, 10usize);
        let out = s.generate(&mut rng);
        assert!(out.len() <= 3);
    }

    #[test]
    fn deterministic_per_test_name() {
        let a: Vec<u64> = {
            let mut rng = TestRng::for_test("same");
            (0..10)
                .map(|_| crate::num::u64::ANY.generate(&mut rng))
                .collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::for_test("same");
            (0..10)
                .map(|_| crate::num::u64::ANY.generate(&mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, assume, and assertions.
        #[test]
        fn macro_end_to_end((a, b) in ((0usize..10), (0usize..10)), x in 0.5f64..1.5) {
            prop_assume!(a != b || a < 5);
            prop_assert!(x >= 0.5 && x < 1.5);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
