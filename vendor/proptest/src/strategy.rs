//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating pseudo-random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the test RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (retrying a bounded number
    /// of times; panics if the predicate is satisfiable too rarely).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: predicate too restrictive: {}", self.whence);
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty => $in_fn:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.$in_fn(self.start, self.end - 1)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$in_fn(*self.start(), *self.end())
            }
        }
    )*};
}

impl_int_ranges!(usize => usize_in, u64 => u64_in, u32 => u32_in, i64 => i64_in, i32 => i32_in);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_ranges!(f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
