//! Test configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test configuration (only the `cases` knob is meaningful here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated input cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error type a property-test body may return (mirrors
/// `proptest::test_runner::TestCaseError`; here it only exists so bodies can
/// use `Result`-style early returns).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result alias for property-test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies: seeded from the test's name so every run
/// of a given test sees the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG for the named test (FNV-1a of the name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive).
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform `u32` in `[lo, hi]` (inclusive).
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive).
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform `i32` in `[lo, hi]` (inclusive).
    pub fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        self.inner.gen_range(lo..=hi)
    }
}
