#!/usr/bin/env bash
# Full local gate: formatting, lints, and the test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace

echo "== serve chaos suite (fixed seed)"
SERVE_CHAOS_SEED=20260706 cargo test --test serve_chaos

echo "== serve chaos soak (high volume)"
SERVE_SOAK=1 cargo test --test serve_chaos fault_storm

echo "== benches compile"
cargo bench --workspace --no-run

echo "== all checks passed"
