#!/usr/bin/env bash
# Full local gate: formatting, lints, and the test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace

echo "== all checks passed"
