#!/usr/bin/env bash
# Full local gate: formatting, lints, conformance, and the test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast with a clear message when the toolchain is missing: every gate
# below needs cargo, and a bare `command not found` mid-run is easy to
# misread as a code failure.
if ! command -v cargo >/dev/null 2>&1; then
  echo "check.sh: error: 'cargo' not found on PATH; install a Rust toolchain first" >&2
  exit 2
fi

# Name the gate that failed: with `set -e` the script dies at the first
# nonzero exit, and without this trap the culprit is whichever command
# happened to print last.
CURRENT_GATE="startup"
trap 'status=$?; if [ "$status" -ne 0 ]; then echo "check.sh: FAILED in gate: $CURRENT_GATE (exit $status)" >&2; fi' EXIT

gate() {
  CURRENT_GATE="$1"
  echo "== $1"
}

gate "cargo fmt --check"
cargo fmt --all -- --check

gate "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

gate "lsi-lint conformance (deny gate + JSON/SARIF reports + allow budget)"
mkdir -p target
# Write the machine-readable reports first (never fail the gate on their
# own), then enforce with the human-readable run so failures print
# diagnostics. The enforcing run also caps the inline-allow count: burning
# down escape hatches must not quietly reverse.
cargo run --release -p lsi-lint -- --format json > target/lint-report.json || true
cargo run --release -p lsi-lint -- --format sarif > target/lint-report.sarif || true
cargo run --release -p lsi-lint -- --allow-budget 30

gate "lsi-lint smoke: seeded violations must fail"
# Inject one W1 (deny) and one L1 (warn) violation into a scratch tree and
# assert the gate actually trips — a lint that silently stopped firing
# would otherwise pass every clean-tree check above.
LINT_SMOKE_DIR="$(mktemp -d)"
cp crates/lsi-lint/fixtures/fire/w1.rs "$LINT_SMOKE_DIR/w1_seeded.rs"
if cargo run --release -p lsi-lint -- "$LINT_SMOKE_DIR/w1_seeded.rs" > /dev/null; then
  echo "check.sh: seeded W1 violation did not fail the lint gate" >&2
  exit 1
fi
cp crates/lsi-lint/fixtures/fire/l1.rs "$LINT_SMOKE_DIR/l1_seeded.rs"
if cargo run --release -p lsi-lint -- --deny-warnings "$LINT_SMOKE_DIR/l1_seeded.rs" > /dev/null; then
  echo "check.sh: seeded L1 violation did not fail --deny-warnings" >&2
  exit 1
fi
rm -rf "$LINT_SMOKE_DIR"
echo "seeded W1/L1 violations correctly rejected"

gate "cargo test"
cargo test --workspace

gate "determinism: tier-1 tests at LSI_THREADS=1 and 4"
LSI_THREADS=1 cargo test -p lsi-linalg --test determinism
LSI_THREADS=4 cargo test -p lsi-linalg --test determinism

gate "determinism: reproduce --exp e6 identical across thread counts"
# E6's numerical columns are seed-deterministic; wall-clock columns vary per
# run, so compare everything except lines containing timings (the table body
# timing columns are filtered by dropping runtime numbers via the summary
# status lines). Simplest robust check: the corpora and experiment statuses
# must match, and the build must succeed at both settings.
LSI_THREADS=1 cargo run --release -p lsi-bench --bin reproduce -- --exp e6 \
  > /tmp/lsi_e6_t1.txt
LSI_THREADS=4 cargo run --release -p lsi-bench --bin reproduce -- --exp e6 \
  > /tmp/lsi_e6_t4.txt
# Strip the four wall-clock columns (cols 3-6 of the table body) before
# diffing; the structural columns (n, m) and every status line must agree.
strip_times() { awk '/^ *[0-9]+ +[0-9]+ /{print $1, $2; next} {print}' "$1"; }
diff <(strip_times /tmp/lsi_e6_t1.txt) <(strip_times /tmp/lsi_e6_t4.txt)
echo "e6 tables structurally identical across LSI_THREADS=1/4"

gate "bench-json smoke"
cargo run --release -p lsi-bench --bin bench-json -- --smoke --out /tmp/lsi_bench_smoke.json
rm -f /tmp/lsi_bench_smoke.json /tmp/lsi_e6_t1.txt /tmp/lsi_e6_t4.txt

gate "perf gate: packed GEMM vs committed BENCH_kernels.json"
# Re-measures the single-thread 1000^3 dense matmul and fails on a >20%
# GFLOP/s regression against the committed baseline. Intentional changes
# regenerate the baseline: cargo run --release -p lsi-bench --bin bench-json
cargo run --release -p lsi-bench --bin bench-json -- --gate BENCH_kernels.json

gate "serve-json smoke (sharded serving baseline, in-process + cross-process)"
# The emitter refuses to write a row whose sharded answers are not bitwise
# the 1-shard answers, so this smoke doubles as a partition-invariance
# check. --process spawns real shard-serve daemon children behind the
# Unix-socket RPC transport and holds them to the same bitwise gate.
cargo run --release -p lsi-bench --bin serve-json -- --smoke --process --out /tmp/lsi_serve_smoke.json
rm -f /tmp/lsi_serve_smoke.json

gate "open-json smoke (cold-start baseline)"
# The emitter refuses to write when a v3 lazy open stops being sublinear
# (byte-counted, not timed) or a streamed answer diverges bitwise from the
# eager open, so this smoke doubles as a cold-start invariant check.
cargo run --release -p lsi-bench --bin open-json -- --smoke --out /tmp/lsi_open_smoke.json
rm -f /tmp/lsi_open_smoke.json

gate "serve chaos suite (fixed seed)"
SERVE_CHAOS_SEED=20260706 cargo test --test serve_chaos

gate "serve chaos soak (high volume)"
SERVE_SOAK=1 cargo test --test serve_chaos fault_storm

gate "cluster chaos: shard storm + rebalance crash matrix (release)"
# Release profile: the storm fans thousands of queries across panicking,
# slow, and crashing shards while documents migrate, and the matrix
# enumerates every crash byte of the two-journal rebalance move.
SERVE_CHAOS_SEED=20260706 cargo test --release --test cluster_chaos
SERVE_SOAK=1 cargo test --release --test cluster_chaos cluster_storm

gate "process chaos: kill -9 storm against real shard daemons (release)"
# Release profile: the storm SIGKILLs live shard-serve child processes
# mid-query, mid-fold-in, and mid-rebalance; every Complete answer must be
# bitwise the unsharded reference, the supervisor must respawn from the
# journal, and no zombies or stale sockets may remain.
SERVE_CHAOS_SEED=20260706 cargo test --release --test process_chaos

gate "durability: crash matrix, corruption fuzz, recovery consistency"
# Release profile: the crash matrix enumerates every byte of every durable
# write and the fuzz sweep flips every byte of every format twice.
cargo test --release --test crash_matrix
cargo test --release --test corruption_fuzz
cargo test --release --test recovery_consistency
cargo test --release -p lsi-cli --test container_fuzz

gate "I/O fault injection: ENOSPC / short-write / transient suite (release)"
# Release profile: every persistence path (journal append, checkpoint,
# atomic rewrite, cluster rebalance) must surface a typed error and leave
# byte-exact pre-state under injected write faults.
cargo test --release --test io_faults

gate "benches compile"
cargo bench --workspace --no-run

CURRENT_GATE="done"
echo "== all checks passed"
