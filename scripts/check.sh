#!/usr/bin/env bash
# Full local gate: formatting, lints, and the test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace

echo "== determinism gate: tier-1 tests at LSI_THREADS=1 and 4"
LSI_THREADS=1 cargo test -p lsi-linalg --test determinism
LSI_THREADS=4 cargo test -p lsi-linalg --test determinism

echo "== determinism gate: reproduce --exp e6 identical across thread counts"
# E6's numerical columns are seed-deterministic; wall-clock columns vary per
# run, so compare everything except lines containing timings (the table body
# timing columns are filtered by dropping runtime numbers via the summary
# status lines). Simplest robust check: the corpora and experiment statuses
# must match, and the build must succeed at both settings.
LSI_THREADS=1 cargo run --release -p lsi-bench --bin reproduce -- --exp e6 \
  > /tmp/lsi_e6_t1.txt
LSI_THREADS=4 cargo run --release -p lsi-bench --bin reproduce -- --exp e6 \
  > /tmp/lsi_e6_t4.txt
# Strip the four wall-clock columns (cols 3-6 of the table body) before
# diffing; the structural columns (n, m) and every status line must agree.
strip_times() { awk '/^ *[0-9]+ +[0-9]+ /{print $1, $2; next} {print}' "$1"; }
diff <(strip_times /tmp/lsi_e6_t1.txt) <(strip_times /tmp/lsi_e6_t4.txt)
echo "e6 tables structurally identical across LSI_THREADS=1/4"

echo "== bench-json smoke"
cargo run --release -p lsi-bench --bin bench-json -- --smoke --out /tmp/lsi_bench_smoke.json
rm -f /tmp/lsi_bench_smoke.json /tmp/lsi_e6_t1.txt /tmp/lsi_e6_t4.txt

echo "== serve chaos suite (fixed seed)"
SERVE_CHAOS_SEED=20260706 cargo test --test serve_chaos

echo "== serve chaos soak (high volume)"
SERVE_SOAK=1 cargo test --test serve_chaos fault_storm

echo "== benches compile"
cargo bench --workspace --no-run

echo "== all checks passed"
